package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/query"
)

// This file pins the compiled query generator against the pre-compilation
// reference implementation: the exact enumeration loop the engine shipped
// before slot-tuple execution, building a *query.Query per candidate,
// running the tree interpreter, and deduplicating by rendered SQL. The
// property test drives both over randomized contexts and formula lists and
// requires bit-identical outputs (same queries, same SQL, same values, same
// order, same budget consumption). The reference also powers
// BenchmarkGenerateQueriesInterpreted, the before side of the ≥5x
// acceptance ratio.

// generateQueriesInterpreted is the reference Algorithm 2 implementation.
func (e *Engine) generateQueriesInterpreted(ctx Context, formulas []*formula.Formula, p float64, hasParam bool) (solutions, alternates []GeneratedQuery) {
	budget := e.cfg.MaxAssignments
	for _, f := range formulas {
		if f == nil || f.Expr == nil {
			continue
		}
		sols, alts, used := e.generateForFormulaInterpreted(ctx, f, p, hasParam, budget)
		budget -= used
		solutions = append(solutions, sols...)
		alternates = append(alternates, alts...)
		if budget <= 0 {
			break
		}
	}
	solutions = dedupeBySQL(solutions)
	alternates = dedupeBySQL(alternates)
	if hasParam {
		sort.SliceStable(solutions, func(i, j int) bool {
			return math.Abs(solutions[i].Value-p) < math.Abs(solutions[j].Value-p)
		})
		sort.SliceStable(alternates, func(i, j int) bool {
			return math.Abs(alternates[i].Value-p) < math.Abs(alternates[j].Value-p)
		})
	}
	if len(alternates) > e.cfg.MaxAlternates {
		alternates = alternates[:e.cfg.MaxAlternates]
	}
	return solutions, alternates
}

func (e *Engine) generateForFormulaInterpreted(ctx Context, f *formula.Formula, p float64, hasParam bool, budget int) (sols, alts []GeneratedQuery, used int) {
	aliases := expr.Aliases(f.Expr)
	attrVars := f.AttrVars

	if len(ctx.Relations) == 0 || len(ctx.Keys) == 0 {
		return nil, nil, 0
	}
	if len(attrVars) > 0 && len(ctx.Attrs) == 0 {
		return nil, nil, 0
	}
	attrAssigns := injectiveAssignments(ctx.Attrs, len(attrVars))
	if len(attrAssigns) == 0 && len(attrVars) > 0 {
		attrAssigns = repeatedAssignments(ctx.Attrs, len(attrVars))
	}
	if len(attrVars) == 0 {
		attrAssigns = [][]string{nil}
	}

	type cell struct{ rel, key string }
	var pairs []cell
	for _, r := range ctx.Relations {
		rel, err := e.corpus.Relation(r)
		if err != nil {
			continue
		}
		for _, k := range ctx.Keys {
			if rel.HasKey(k) {
				pairs = append(pairs, cell{r, k})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, nil, 0
	}

	idx := make([]int, len(aliases))
	for {
		for _, aa := range attrAssigns {
			used++
			if used > budget {
				return sols, alts, used
			}
			q := &query.Query{Select: f.Expr, AttrBindings: map[string]string{}}
			for vi, v := range attrVars {
				q.AttrBindings[v] = aa[vi]
			}
			for ai, alias := range aliases {
				pr := pairs[idx[ai]]
				q.Bindings = append(q.Bindings, query.Binding{Alias: alias, Relation: pr.rel, Key: pr.key})
			}
			val, err := q.ExecuteInterpreted(e.corpus)
			if err != nil {
				continue
			}
			g := GeneratedQuery{Query: q, Value: val, Formula: f.String()}
			if hasParam && claims.RelClose(val, p, e.cfg.Tolerance) {
				sols = append(sols, g)
			} else {
				alts = append(alts, g)
			}
		}
		carry := len(aliases) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(pairs) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}
	return sols, alts, used
}

func dedupeBySQL(qs []GeneratedQuery) []GeneratedQuery {
	seen := make(map[string]bool, len(qs))
	out := qs[:0]
	for _, g := range qs {
		sql := g.Query.SQL()
		if seen[sql] {
			continue
		}
		seen[sql] = true
		out = append(out, g)
	}
	return out
}

// equalGenerated compares two generated-query lists for bit-identical
// content and order.
func equalGenerated(t *testing.T, label string, got, want []GeneratedQuery) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d queries, reference has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Formula != want[i].Formula {
			t.Errorf("%s[%d]: formula %q vs %q", label, i, got[i].Formula, want[i].Formula)
		}
		if math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
			t.Errorf("%s[%d]: value %v vs %v", label, i, got[i].Value, want[i].Value)
		}
		if gs, ws := got[i].Query.SQL(), want[i].Query.SQL(); gs != ws {
			t.Errorf("%s[%d]: SQL %q vs %q", label, i, gs, ws)
		}
	}
}

// genFormulaPool builds a diverse set of canonical (variable-form) formulas
// exercising cell refs, attribute variables as numbers, functions with
// domain errors, division, comparisons and unary minus.
var genFormulaPool = []string{
	"a.A1",
	"a.A1 - b.A2",
	"a.A1 / b.A2",
	"(a.A1 - b.A2) / b.A2",
	"POWER(a.A1/b.A2, 1/(A1-A2)) - 1",
	"CAGR(a.A1, b.A2, A1 - A2)",
	"a.A1 + a.A2 + b.A1",
	"SQRT(a.A1 - b.A2)",
	"LOG(a.A1 / b.A2)",
	"MAX(a.A1, b.A2, 0) - MIN(a.A1, b.A2)",
	"a.A1 > b.A2",
	"-a.A1 * 2",
	"AVG(a.A1, b.A1, c.A2)",
	"SUM(a.A1, b.A2) / 2",
	"ABS(a.A1 - b.A2) / ABS(b.A2)",
}

func TestGenerateQueriesMatchesInterpretedReference(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	rels := w.Corpus.Names()
	var keys []string
	for _, rn := range rels {
		r, err := w.Corpus.Relation(rn)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, r.Keys()...)
		if len(keys) > 12 {
			break
		}
	}
	var attrs []string
	if r, err := w.Corpus.Relation(rels[0]); err == nil {
		attrs = r.Attrs()
	}
	rng := rand.New(rand.NewSource(42))
	pick := func(pool []string, n int) []string {
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, pool[rng.Intn(len(pool))])
		}
		return out
	}
	for trial := 0; trial < 60; trial++ {
		ctx := Context{
			Relations: pick(rels, 1+rng.Intn(2)),
			Keys:      pick(keys, 1+rng.Intn(3)),
			Attrs:     pick(attrs, 1+rng.Intn(3)),
		}
		var fs []*formula.Formula
		for _, src := range pick(genFormulaPool, 1+rng.Intn(4)) {
			fs = append(fs, formula.MustParseFormula(src))
		}
		p := rng.Float64() * 1000
		hasParam := rng.Intn(3) > 0
		// Shrink the budget sometimes so the truncation accounting is
		// exercised too.
		e.cfg.MaxAssignments = []int{1, 3, 17, 20000}[rng.Intn(4)]

		gotS, gotA, _ := e.GenerateQueries(context.Background(), ctx, fs, p, hasParam)
		wantS, wantA := e.generateQueriesInterpreted(ctx, fs, p, hasParam)
		equalGenerated(t, "solutions", gotS, wantS)
		equalGenerated(t, "alternates", gotA, wantA)

		// Second run must serve from the cache and stay identical.
		againS, againA, _ := e.GenerateQueries(context.Background(), ctx, fs, p, hasParam)
		equalGenerated(t, "cached solutions", againS, wantS)
		equalGenerated(t, "cached alternates", againA, wantA)
	}
	if s := e.QueryCacheStats(); s.Hits == 0 {
		t.Error("repeated generation never hit the query cache")
	}
}

// TestGenerateQueriesDuplicateContextEntries pins the canonicalisation that
// replaces rendered-SQL dedupe: duplicated relations, keys or attribute
// labels in the validated context must not produce duplicate candidates.
func TestGenerateQueriesDuplicateContextEntries(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	f := formula.MustParseFormula(c.Truth.Formula)
	base := Context{Relations: c.Truth.Relations, Keys: c.Truth.Keys, Attrs: c.Truth.Attrs}
	dup := Context{
		Relations: append(append([]string{}, base.Relations...), base.Relations...),
		Keys:      append(append([]string{}, base.Keys...), base.Keys...),
		Attrs:     append(append([]string{}, base.Attrs...), base.Attrs...),
	}
	gotS, gotA, _ := e.GenerateQueries(context.Background(), dup, []*formula.Formula{f}, c.Param, c.HasParam)
	wantS, wantA := e.generateQueriesInterpreted(dup, []*formula.Formula{f}, c.Param, c.HasParam)
	equalGenerated(t, "solutions", gotS, wantS)
	equalGenerated(t, "alternates", gotA, wantA)
}

// TestQueryCacheInvalidationOnCorpusChange ensures a corpus mutation is
// observed by the memoized tentative executions.
func TestQueryCacheInvalidationOnCorpusChange(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	f := formula.MustParseFormula("a.A1")
	ctx := Context{Relations: c.Truth.Relations, Keys: c.Truth.Keys, Attrs: c.Truth.Attrs}
	s1, a1, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f}, 0, false)
	all1 := append(append([]GeneratedQuery{}, s1...), a1...)
	if len(all1) == 0 {
		t.Fatal("no candidates generated")
	}
	// Mutate the cell the first candidate reads.
	b := all1[0].Query.Bindings[0]
	rel, err := w.Corpus.Relation(b.Relation)
	if err != nil {
		t.Fatal(err)
	}
	attr := all1[0].Query.AttrBindings["A1"]
	if err := rel.Set(b.Key, attr, all1[0].Value+123); err != nil {
		t.Fatal(err)
	}
	s2, a2, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f}, 0, false)
	all2 := append(append([]GeneratedQuery{}, s2...), a2...)
	if len(all2) == 0 {
		t.Fatal("no candidates after mutation")
	}
	if all2[0].Value != all1[0].Value+123 {
		t.Errorf("mutation not observed: value %g, want %g", all2[0].Value, all1[0].Value+123)
	}
}

// TestFinalScreenDeduplicatesRenderedSQL reproduces the one sanctioned
// divergence from rendered-SQL dedupe: two distinct formulas whose
// repeated attribute assignment collapses to byte-identical SQL. Slot-key
// dedupe keeps both candidates, so the final screen itself must not show
// the duplicate (it would burn one of the checker's option slots).
func TestFinalScreenDeduplicatesRenderedSQL(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if _, err := e.lib.AddString("a.A1 - b.A2"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.lib.AddString("a.A1 - b.A1"); err != nil {
		t.Fatal(err)
	}
	c := w.Document.Claims[0]
	run, err := e.StartClaim(c)
	if err != nil {
		t.Fatal(err)
	}
	// Validate a context with a single attribute: injective assignment is
	// impossible, the repeated fallback maps A1 = A2, and both library
	// formulas render the same SQL.
	answers := map[PropertyKind]string{
		PropRelation: JoinLabel(c.Truth.Relations[:1]),
		PropKey:      JoinLabel(c.Truth.Keys[:1]),
		PropAttr:     JoinLabel(c.Truth.Attrs[:1]),
	}
	for !run.Done() && run.Step() != StepFinal {
		q := run.Question()
		if err := run.Answer(context.Background(), answers[q.Property], 1); err != nil {
			t.Fatal(err)
		}
	}
	q := run.Question()
	if q == nil || q.Step != StepFinal {
		t.Fatalf("expected final screen, got %+v", q)
	}
	// Generation itself collapses the collision at materialisation: the two
	// formulas yield one distinct query, not two.
	sols, alts, _ := e.GenerateQueries(context.Background(), Context{
		Relations: c.Truth.Relations[:1],
		Keys:      c.Truth.Keys[:1],
		Attrs:     c.Truth.Attrs[:1],
	}, []*formula.Formula{
		formula.MustParseFormula("a.A1 - b.A2"),
		formula.MustParseFormula("a.A1 - b.A1"),
	}, c.Param, c.HasParam)
	all := map[string]bool{}
	for _, g := range append(append([]GeneratedQuery{}, sols...), alts...) {
		sql := g.Query.SQL()
		if all[sql] {
			t.Fatalf("GenerateQueries emitted duplicate SQL %q", sql)
		}
		all[sql] = true
	}
	if len(all) == 0 {
		t.Fatal("collision scenario generated nothing")
	}
	// And the screen (whose bySQL guard is defence in depth) never shows
	// the same SQL twice either.
	seen := map[string]bool{}
	for _, sql := range q.Candidates {
		if seen[sql] {
			t.Fatalf("final screen shows duplicate SQL %q in %v", sql, q.Candidates)
		}
		seen[sql] = true
	}
	if len(q.Candidates) == 0 {
		t.Fatal("final screen shows no candidates")
	}
}

// TestGenerateQueriesCrossFormulaSQLCollision pins the one case slot-key
// dedupe alone would miss: two distinct formulas whose repeated attribute
// assignment renders byte-identical SQL. The late SQL dedupe at
// materialisation must reproduce the reference's rendered-SQL dedupe
// exactly (same survivors, same order, no alternate slot burned on a
// duplicate).
func TestGenerateQueriesCrossFormulaSQLCollision(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	ctx := Context{
		Relations: c.Truth.Relations[:1],
		Keys:      c.Truth.Keys[:1],
		Attrs:     c.Truth.Attrs[:1], // single attr: A1 = A2 via repeated fallback
	}
	fs := []*formula.Formula{
		formula.MustParseFormula("a.A1 - b.A2"),
		formula.MustParseFormula("a.A1 - b.A1"),
		formula.MustParseFormula("a.A1"),
	}
	for _, hasParam := range []bool{true, false} {
		gotS, gotA, _ := e.GenerateQueries(context.Background(), ctx, fs, c.Param, hasParam)
		wantS, wantA := e.generateQueriesInterpreted(ctx, fs, c.Param, hasParam)
		equalGenerated(t, "solutions", gotS, wantS)
		equalGenerated(t, "alternates", gotA, wantA)
		if len(wantA)+len(wantS) == 0 {
			t.Fatal("collision scenario generated nothing")
		}
	}
}
