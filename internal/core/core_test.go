package core

import (
	"context"
	"math"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/embed"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/worldgen"
)

// buildEngine creates an engine over a small synthetic world.
func buildEngine(t testing.TB, cfgWorld worldgen.Config) (*Engine, *worldgen.World) {
	t.Helper()
	w, err := worldgen.Generate(cfgWorld)
	if err != nil {
		t.Fatal(err)
	}
	var sentences, texts []string
	for _, c := range w.Document.Claims {
		sentences = append(sentences, c.Sentence)
		texts = append(texts, c.Text)
	}
	pipe, err := feature.Fit(sentences, texts, feature.Config{
		Embedding: embed.Config{Dim: 24, Seed: 5},
		MinDF:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Classifier.Epochs = 4
	e, err := NewEngine(w.Corpus, pipe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

func tinyWorld() worldgen.Config {
	cfg := worldgen.SmallScale()
	cfg.NumClaims = 60
	cfg.NumSections = 6
	return cfg
}

func TestPropertyKindStrings(t *testing.T) {
	want := map[PropertyKind]string{
		PropRelation: "relation", PropKey: "key",
		PropAttr: "attribute", PropFormula: "formula",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d = %q, want %q", k, k.String(), s)
		}
	}
	if PropertyKind(9).String() == "" {
		t.Error("unknown kind should print")
	}
	if len(PropertyKinds()) != 4 {
		t.Error("PropertyKinds should list 4")
	}
}

func TestJoinSplitLabel(t *testing.T) {
	if JoinLabel([]string{"a", "b"}) != "a|b" {
		t.Error("JoinLabel wrong")
	}
	got := SplitLabel("a|b")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("SplitLabel = %v", got)
	}
	if SplitLabel("") != nil {
		t.Error("SplitLabel empty should be nil")
	}
}

func TestTruthLabel(t *testing.T) {
	gt := &claims.GroundTruth{
		Relations: []string{"R1", "R2"}, Keys: []string{"K"},
		Attrs: []string{"2016", "2017"}, Formula: "a.A1",
	}
	if TruthLabel(gt, PropRelation) != "R1|R2" ||
		TruthLabel(gt, PropKey) != "K" ||
		TruthLabel(gt, PropAttr) != "2016|2017" ||
		TruthLabel(gt, PropFormula) != "a.A1" {
		t.Error("TruthLabel wrong")
	}
	if TruthLabel(nil, PropKey) != "" {
		t.Error("nil truth should yield empty label")
	}
}

func TestNewEngineValidation(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if e.Corpus() != w.Corpus {
		t.Error("Corpus accessor wrong")
	}
	if _, err := NewEngine(nil, nil, Config{}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := NewEngine(w.Corpus, nil, Config{}); err == nil {
		t.Error("nil pipeline accepted")
	}
}

func TestTrainAndCandidates(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	c := w.Document.Claims[0]
	cands := e.Candidates(c)
	if len(cands) != 4 {
		t.Fatalf("candidates = %d properties", len(cands))
	}
	for _, p := range cands {
		if len(p.Options) == 0 {
			t.Errorf("property %s has no options after training", p.Name)
		}
		for i := 1; i < len(p.Options); i++ {
			if p.Options[i-1].Prob < p.Options[i].Prob {
				t.Errorf("property %s options unsorted", p.Name)
			}
		}
	}
	// Library populated from formulas.
	if e.Library().Len() == 0 {
		t.Error("formula library empty after training")
	}
}

func TestTrainRejectsMalformedFormula(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	bad := &claims.Claim{ID: 999, Text: "x", Sentence: "x", Truth: &claims.GroundTruth{
		Relations: []string{"R"}, Keys: []string{"K"}, Attrs: []string{"2017"},
		Formula: "((((",
	}}
	if err := e.Train(append(w.Document.Claims[:3], bad)); err == nil {
		t.Error("malformed formula accepted")
	}
}

func TestUtilityDropsWithTraining(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	untrained := e.Utility(c)
	if untrained != 4 {
		t.Errorf("untrained utility = %g, want 4 (1 per model)", untrained)
	}
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	trained := e.Utility(c)
	if trained >= untrained {
		t.Errorf("utility should drop after training: %g -> %g", untrained, trained)
	}
}

func TestGenerateQueriesFindsTruth(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	// Use ground-truth context directly (as if crowd-validated).
	for _, c := range w.Document.Claims[:20] {
		ctx := Context{
			Relations: c.Truth.Relations,
			Keys:      c.Truth.Keys,
			Attrs:     c.Truth.Attrs,
		}
		f, err := formula.ParseFormula(c.Truth.Formula)
		if err != nil {
			t.Fatal(err)
		}
		hasParam := c.Kind == claims.Explicit && c.HasParam
		sols, alts, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f}, c.Param, hasParam)
		if hasParam && c.Correct {
			if len(sols) == 0 {
				t.Errorf("claim %d (%q): no solution found", c.ID, c.Text)
				continue
			}
			if !claims.RelClose(sols[0].Value, c.Param, e.cfg.Tolerance) {
				t.Errorf("claim %d: solution value %g vs param %g", c.ID, sols[0].Value, c.Param)
			}
		}
		if hasParam && !c.Correct && len(sols) > 0 {
			// A perturbed parameter should not be matched by the truth
			// formula on the truth context (other assignments could
			// accidentally match, which the crowd's final screen weeds
			// out — only assert the truth assignment is in alternates).
			found := false
			for _, a := range alts {
				if math.Abs(a.Value-c.Truth.Value) < 1e-9*math.Max(1, math.Abs(c.Truth.Value)) {
					found = true
				}
			}
			_ = found // accidental matches tolerated
		}
	}
}

func TestGenerateQueriesEmptyContext(t *testing.T) {
	e, _ := buildEngine(t, tinyWorld())
	f := formula.MustParseFormula("a.A1")
	sols, alts, _ := e.GenerateQueries(context.Background(), Context{}, []*formula.Formula{f}, 1, true)
	if len(sols) != 0 || len(alts) != 0 {
		t.Error("empty context should generate nothing")
	}
	// Nil formulas are skipped.
	sols, alts, _ = e.GenerateQueries(context.Background(), Context{Relations: []string{"R"}, Keys: []string{"K"}}, nil, 1, true)
	if len(sols) != 0 || len(alts) != 0 {
		t.Error("no formulas should generate nothing")
	}
}

func TestGenerateQueriesAlternatesBounded(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	ctx := Context{
		Relations: c.Truth.Relations,
		Keys:      c.Truth.Keys,
		Attrs:     []string{"2010", "2011", "2012", "2013"},
	}
	f := formula.MustParseFormula("a.A1 / b.A2")
	_, alts, _ := e.GenerateQueries(context.Background(), ctx, []*formula.Formula{f}, 1e12, true)
	if len(alts) > e.cfg.MaxAlternates {
		t.Errorf("alternates = %d exceeds cap %d", len(alts), e.cfg.MaxAlternates)
	}
}

func TestTruthQueryMatchesAnnotation(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	for _, c := range w.Document.Claims {
		q, err := e.TruthQuery(c)
		if err != nil {
			t.Fatalf("claim %d: %v", c.ID, err)
		}
		v, err := q.Execute(w.Corpus)
		if err != nil {
			t.Fatalf("claim %d truth query exec: %v", c.ID, err)
		}
		if math.Abs(v-c.Truth.Value) > 1e-9*math.Max(1, math.Abs(v)) {
			t.Fatalf("claim %d: truth query %g vs annotation %g", c.ID, v, c.Truth.Value)
		}
	}
	if _, err := e.TruthQuery(&claims.Claim{}); err == nil {
		t.Error("claim without truth accepted")
	}
}

func TestVerifyClaimColdStart(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Document.Claims[0]
	out, err := e.VerifyClaim(context.Background(), c, team)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == VerdictSkipped {
		t.Fatalf("cold-start claim skipped: %+v", out)
	}
	if (out.Verdict == VerdictCorrect) != c.Correct {
		t.Errorf("verdict %v but claim Correct=%v", out.Verdict, c.Correct)
	}
	if out.Seconds <= 0 {
		t.Error("no crowd time recorded")
	}
	if out.Label == nil {
		t.Error("no training label produced")
	}
}

func TestVerifyClaimErrors(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.VerifyClaim(context.Background(), nil, team); err == nil {
		t.Error("nil claim accepted")
	}
	if _, err := e.VerifyClaim(context.Background(), &claims.Claim{ID: 1}, team); err == nil {
		t.Error("claim without truth accepted")
	}
	if _, err := e.VerifyClaim(context.Background(), w.Document.Claims[0], nil); err == nil {
		t.Error("nil team accepted")
	}
}

func TestVerifyEndToEnd(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	batches := 0
	res, err := e.Verify(context.Background(), w.Document, team, VerifyConfig{
		BatchSize:       20,
		SectionReadCost: 30,
		Ordering:        OrderILP,
		AfterBatch: func(b, verified int, outs []*Outcome) {
			batches = b
			if len(outs) == 0 {
				t.Error("empty batch outcome")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("verified %d of %d claims", len(res.Outcomes), len(w.Document.Claims))
	}
	if res.Batches != batches || batches == 0 {
		t.Errorf("batches = %d, callback saw %d", res.Batches, batches)
	}
	if res.Seconds <= 0 {
		t.Error("no time recorded")
	}
	// Perfect workers + majority voting: accuracy must be 1.0 (the user
	// study reports 100% with majority voting).
	if acc := Accuracy(w.Document, res.Outcomes); acc < 0.98 {
		t.Errorf("accuracy = %g, want ~1.0", acc)
	}
}

func TestVerifySequentialOrdering(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var firstBatch []int
	res, err := e.Verify(context.Background(), w.Document, team, VerifyConfig{
		BatchSize: 10,
		Ordering:  OrderSequential,
		AfterBatch: func(b, v int, outs []*Outcome) {
			if b == 1 {
				for _, o := range outs {
					firstBatch = append(firstBatch, o.ClaimID)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches < 2 {
		t.Errorf("expected multiple batches, got %d", res.Batches)
	}
	// Sequential ordering = document order: the first batch must be
	// claims 1..10.
	for i, id := range firstBatch {
		if id != i+1 {
			t.Errorf("sequential first batch = %v", firstBatch)
			break
		}
	}
}

func TestAccuracyHelpers(t *testing.T) {
	doc := &claims.Document{Sections: 1, Claims: []*claims.Claim{
		{ID: 1, Correct: true, Truth: &claims.GroundTruth{Value: 10}},
		{ID: 2, Correct: false, Truth: &claims.GroundTruth{Value: 20}},
	}}
	outs := []*Outcome{
		{ClaimID: 1, Verdict: VerdictCorrect},
		{ClaimID: 2, Verdict: VerdictCorrect}, // wrong: claim is incorrect
	}
	if acc := Accuracy(doc, outs); acc != 0.5 {
		t.Errorf("Accuracy = %g, want 0.5", acc)
	}
	if acc := Accuracy(doc, nil); acc != 0 {
		t.Errorf("empty Accuracy = %g", acc)
	}
	// Skipped outcomes excluded.
	outs = []*Outcome{{ClaimID: 1, Verdict: VerdictSkipped}}
	if acc := Accuracy(doc, outs); acc != 0 {
		t.Errorf("skipped-only Accuracy = %g", acc)
	}
	// MeanAbsError over suggestions.
	outs = []*Outcome{{ClaimID: 2, Verdict: VerdictIncorrect, Suggestion: 20, HasSuggestion: true}}
	if mae := MeanAbsError(doc, outs); mae != 0 {
		t.Errorf("exact suggestion MAE = %g", mae)
	}
	if mae := MeanAbsError(doc, nil); mae != 0 {
		t.Errorf("empty MAE = %g", mae)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictCorrect.String() != "correct" || VerdictIncorrect.String() != "incorrect" || VerdictSkipped.String() != "skipped" {
		t.Error("verdict strings wrong")
	}
	if Verdict(9).String() == "" || Ordering(9).String() == "" {
		t.Error("unknown enums should print")
	}
	if OrderILP.String() != "ilp" || OrderSequential.String() != "sequential" || OrderGreedy.String() != "greedy" {
		t.Error("ordering strings wrong")
	}
}

func TestAssessMatchesSeparateCalls(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	for _, c := range w.Document.Claims[:10] {
		cost, utility := e.Assess(c)
		if got := e.Utility(c); math.Abs(got-utility) > 1e-12 {
			t.Errorf("claim %d: Assess utility %g vs Utility %g", c.ID, utility, got)
		}
		plan, _, err := e.PlanQuestions(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plan.ExpectedCost-cost) > 1e-12 {
			t.Errorf("claim %d: Assess cost %g vs plan %g", c.ID, cost, plan.ExpectedCost)
		}
	}
	// Untrained: utility 4 (1 per model), cost near the cold-start level.
	e2, w2 := buildEngine(t, tinyWorld())
	cost, utility := e2.Assess(w2.Document.Claims[0])
	if utility != 4 {
		t.Errorf("untrained Assess utility = %g", utility)
	}
	if cost < e2.cfg.Cost.ManualCost() {
		t.Errorf("untrained Assess cost %g below manual", cost)
	}
}

func TestVerifyRandomOrdering(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Verify(context.Background(), w.Document, team, VerifyConfig{
		BatchSize: 15,
		Ordering:  OrderRandom,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("random ordering verified %d of %d", len(res.Outcomes), len(w.Document.Claims))
	}
	if acc := Accuracy(w.Document, res.Outcomes); acc < 0.95 {
		t.Errorf("random-order accuracy = %g", acc)
	}
}

func TestVerifyTightBudgetFallback(t *testing.T) {
	// A batch budget too small for even one claim triggers the
	// document-order fallback; verification must still terminate and
	// cover every claim.
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Verify(context.Background(), w.Document, team, VerifyConfig{
		BatchSize:       10,
		BatchBudget:     1, // absurdly tight
		SectionReadCost: 10,
		Ordering:        OrderILP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("fallback verified %d of %d", len(res.Outcomes), len(w.Document.Claims))
	}
}

func TestVerifyNilAndInvalidDocument(t *testing.T) {
	e, _ := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 1, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Verify(context.Background(), nil, team, VerifyConfig{}); err == nil {
		t.Error("nil document accepted")
	}
	bad := &claims.Document{Sections: 1, Claims: []*claims.Claim{{ID: 1, Section: 5}}}
	if _, err := e.Verify(context.Background(), bad, team, VerifyConfig{}); err == nil {
		t.Error("invalid document accepted")
	}
}

func TestUtilityWeightVariantEndToEnd(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	team, err := crowd.NewTeam("S", 3, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Verify(context.Background(), w.Document, team, VerifyConfig{
		BatchSize:     15,
		Ordering:      OrderILP,
		UtilityWeight: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(w.Document.Claims) {
		t.Fatalf("variant verified %d of %d", len(res.Outcomes), len(w.Document.Claims))
	}
}

func TestExpectedCostColdVsTrained(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[0]
	cold := e.ExpectedCost(c)
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	trained := e.ExpectedCost(c)
	if trained >= cold {
		t.Errorf("expected cost should drop after training: cold=%g trained=%g", cold, trained)
	}
}
