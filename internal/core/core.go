package core

import (
	"fmt"
	"strings"
	"sync"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/expr"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/textproc"
)

// PropertyKind enumerates the four query properties predicted by the
// classifiers.
type PropertyKind int

const (
	PropRelation PropertyKind = iota
	PropKey
	PropAttr
	PropFormula
)

// String implements fmt.Stringer.
func (p PropertyKind) String() string {
	switch p {
	case PropRelation:
		return "relation"
	case PropKey:
		return "key"
	case PropAttr:
		return "attribute"
	case PropFormula:
		return "formula"
	}
	return fmt.Sprintf("PropertyKind(%d)", int(p))
}

// PropertyKinds lists all four kinds in canonical order.
func PropertyKinds() []PropertyKind {
	return []PropertyKind{PropRelation, PropKey, PropAttr, PropFormula}
}

// labelSep joins multi-valued properties (e.g. two key values) into a single
// classification label; '|' never occurs in generated vocabulary.
const labelSep = "|"

// JoinLabel encodes a value list as one classifier label.
func JoinLabel(values []string) string { return strings.Join(values, labelSep) }

// SplitLabel decodes a classifier label back into its value list.
func SplitLabel(label string) []string {
	if label == "" {
		return nil
	}
	return strings.Split(label, labelSep)
}

// TruthLabel extracts the training label of one property from a ground-truth
// annotation. Formula labels are canonicalised (parsed and re-rendered) so
// that labels derived from annotations and labels derived from generalising
// accepted queries share one vocabulary.
func TruthLabel(t *claims.GroundTruth, kind PropertyKind) string {
	if t == nil {
		return ""
	}
	switch kind {
	case PropRelation:
		return JoinLabel(t.Relations)
	case PropKey:
		return JoinLabel(t.Keys)
	case PropAttr:
		return JoinLabel(t.Attrs)
	case PropFormula:
		return CanonicalFormula(t.Formula)
	}
	return ""
}

// CanonicalFormula parses and re-renders a formula string into the
// classifier's canonical label form; unparseable input is returned verbatim.
func CanonicalFormula(src string) string {
	if src == "" {
		return ""
	}
	f, err := formula.ParseFormula(src)
	if err != nil {
		return src
	}
	return f.String()
}

// Config parameterises the engine.
type Config struct {
	// Classifier configures all four models.
	Classifier classifier.Config
	// Cost is the §5.1 crowd cost model.
	Cost planner.CostModel
	// Tolerance is the admissible error rate e of Definition 2.
	Tolerance float64
	// TopK is how many candidates each classifier contributes per
	// property (the paper shows up to ten answer options per property in
	// the simulation).
	TopK int
	// MaxAssignments caps the brute-force variable-assignment loop of
	// Algorithm 2 per formula, keeping query generation sub-second as in
	// the paper.
	MaxAssignments int
	// MaxAlternates bounds how many non-matching queries are kept as
	// correction suggestions (Example 4).
	MaxAlternates int
	// QueryCache, when non-nil, is a shared tentative-execution cache
	// (typically one per corpus, shared across engines so concurrent
	// sessions deduplicate Algorithm 2 work). Nil gives the engine a
	// private cache.
	QueryCache *QueryCache
	// FormulaParallelism bounds the fan-out of Algorithm 2 enumeration
	// across formulas within one claim: cache-missing formulas are
	// enumerated concurrently, each at the full assignment budget, before
	// the sequential serve pass (bit-identical outputs; see
	// GenerateQueries). <= 1 keeps enumeration sequential. 0 defaults to
	// min(4, GOMAXPROCS).
	FormulaParallelism int
}

// DefaultConfig mirrors the experimental setup of §6.
func DefaultConfig() Config {
	return Config{
		Classifier:     classifier.Config{Epochs: 6, LearningRate: 0.5, L2: 1e-4, Seed: 1},
		Cost:           planner.DefaultCostModel(),
		Tolerance:      0.05,
		TopK:           10,
		MaxAssignments: 20000,
		MaxAlternates:  5,

		FormulaParallelism: defaultFormulaParallelism(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cost == (planner.CostModel{}) {
		c.Cost = d.Cost
	}
	if c.Tolerance <= 0 {
		c.Tolerance = d.Tolerance
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.MaxAssignments <= 0 {
		c.MaxAssignments = d.MaxAssignments
	}
	if c.MaxAlternates <= 0 {
		c.MaxAlternates = d.MaxAlternates
	}
	if c.FormulaParallelism <= 0 {
		c.FormulaParallelism = d.FormulaParallelism
	}
	return c
}

// Engine is the assembled Scrutinizer system for one corpus + document pair.
type Engine struct {
	corpus *table.Corpus
	pipe   *feature.Pipeline
	cfg    Config

	models map[PropertyKind]*classifier.Classifier
	lib    *formula.Library

	// qcache memoizes tentative execution per corpus generation (see
	// QueryCache); fc caches everything derivable from a formula string
	// alone — the parse, the canonical rendering, the alias list and the
	// compiled program (all corpus- and training-independent, so the cache
	// is shared across every engine spawned from one snapshot lineage).
	qcache *QueryCache
	fc     *formulaCache

	// genOverride, when set, replaces GenerateQueries' compiled engine —
	// the benchmark/equivalence hook that lets the reference interpreter
	// drive the full Algorithm 1 loop for end-to-end comparisons.
	genOverride func(Context, []*formula.Formula, float64, bool) ([]GeneratedQuery, []GeneratedQuery)

	// featMu guards the feature cache: claim verification fans out across
	// goroutines (Verify with Parallelism > 1) and Featurize is on that
	// shared path. Everything else the workers touch — classifier scoring,
	// the formula library, the corpus — is read-only between training
	// rounds.
	featMu    sync.RWMutex
	featCache map[int]textproc.Sparse // claim ID -> features

	// assessMu guards the per-claim assessment cache and the model
	// generation counter. Classifier outputs for a claim are pure in
	// (claim, model state), so each claim's candidates / entropy / expected
	// cost are computed once per generation and invalidated simply by
	// bumping gen when train refits the models — the scheduler's utility
	// scan and the per-claim planning inside a batch then share one scoring
	// pass instead of re-running softmax over all claims each round.
	assessMu sync.RWMutex
	gen      uint64
	assessed map[int]*assessment // claim ID -> cached assessment

	// seqAssess forces assessAll onto the legacy per-claim scoring path —
	// the reference implementation the batch path is pinned against in
	// the equivalence tests. Never set outside tests.
	seqAssess bool

	// origin is the snapshot this engine was spawned from, when it came
	// through ModelSnapshot.Spawn; Release returns the engine to the
	// snapshot's spare pool so its caches and model buffers are recycled
	// by the next Spawn.
	origin *ModelSnapshot
}

// assessment is everything one scoring pass over the four models yields for
// a claim, stamped with the model generation it was computed under.
type assessment struct {
	gen     uint64
	utility float64            // u(c): summed predictive entropies (Definition 7)
	cost    float64            // v(c): expected crowd seconds (Definition 8)
	props   []planner.Property // per-property top-k candidates (planning input)
	plan    *planner.Plan      // the §5.1 question plan; nil when planning failed
	planErr error              // why plan is nil
}

// NewEngine wires an engine from a corpus and a fitted feature pipeline.
func NewEngine(corpus *table.Corpus, pipe *feature.Pipeline, cfg Config) (*Engine, error) {
	if corpus == nil {
		return nil, fmt.Errorf("core: nil corpus")
	}
	if pipe == nil {
		return nil, fmt.Errorf("core: nil feature pipeline")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Cost.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		corpus:    corpus,
		pipe:      pipe,
		cfg:       cfg,
		models:    make(map[PropertyKind]*classifier.Classifier, 4),
		lib:       formula.NewLibrary(),
		featCache: make(map[int]textproc.Sparse),
		assessed:  make(map[int]*assessment),
		qcache:    cfg.QueryCache,
		fc:        newFormulaCache(),
	}
	if e.qcache == nil {
		e.qcache = NewQueryCache()
	}
	for _, k := range PropertyKinds() {
		e.models[k] = classifier.New(cfg.Classifier)
	}
	return e, nil
}

// Corpus returns the engine's relational corpus.
func (e *Engine) Corpus() *table.Corpus { return e.corpus }

// QueryCacheStats reports the engine's tentative-execution cache state.
func (e *Engine) QueryCacheStats() QueryCacheStats { return e.qcache.Stats() }

// formulaCacheCap bounds the distinct formula strings the cache retains;
// the formula vocabulary is small in practice, the cap only guards against
// adversarial checker input (formula strings ultimately arrive through
// crowd answers and HTTP sessions).
const formulaCacheCap = 4096

// fcEntry is everything the engine ever derives from one formula string:
// the parse result (or its error), the canonical rendering, the alias list
// of the expression, and the compiled program. All of it is corpus- and
// training-independent, so entries never invalidate.
type fcEntry struct {
	f       *formula.Formula // nil when the source does not parse
	err     error            // the parse error when f is nil
	canon   string           // f.String(); the source verbatim when unparseable
	aliases []string         // expr.Aliases(f.Expr); computed lazily
	prog    *expr.Program    // compiled program; nil marks compiler-rejected
	progSet bool             // whether prog was resolved yet
}

// formulaCache memoizes formula derivations keyed both by source string
// (classifier labels, crowd answers, annotations) and by parsed pointer
// (formulas flowing from buildFinal into query generation), so the
// per-claim hot path — parse the top-k formula options, render their
// canonical keys, walk their alias lists, compile — degenerates to map
// hits after the first claim of a vocabulary. One cache is shared by an
// engine and every engine spawned from its snapshots. All methods are
// safe for concurrent use.
type formulaCache struct {
	mu    sync.RWMutex
	bySrc map[string]*fcEntry
	byPtr map[*formula.Formula]*fcEntry
}

func newFormulaCache() *formulaCache {
	return &formulaCache{
		bySrc: make(map[string]*fcEntry),
		byPtr: make(map[*formula.Formula]*fcEntry),
	}
}

// intern returns the cache entry for a source string, parsing on first
// use. Successful parses are registered under the source, the canonical
// rendering and the parsed pointer, so later lookups through any of the
// three converge on one entry.
func (fc *formulaCache) intern(src string) *fcEntry {
	fc.mu.RLock()
	ent, ok := fc.bySrc[src]
	fc.mu.RUnlock()
	if ok {
		return ent
	}
	f, err := formula.ParseFormula(src)
	if err != nil {
		ent = &fcEntry{err: err, canon: src}
	} else {
		ent = &fcEntry{f: f, canon: f.String()}
	}
	fc.mu.Lock()
	if prev, ok := fc.bySrc[src]; ok {
		ent = prev // racing duplicate parse: first writer wins
	} else if len(fc.bySrc) < formulaCacheCap {
		fc.bySrc[src] = ent
		if ent.f != nil {
			if _, ok := fc.bySrc[ent.canon]; !ok {
				fc.bySrc[ent.canon] = ent
			}
			fc.byPtr[ent.f] = ent
		}
	}
	fc.mu.Unlock()
	return ent
}

// ofFormula returns the cache entry for an already-parsed formula,
// rendering and registering it on first sight (formulas born outside the
// cache, e.g. from Generalize or direct library loads).
func (fc *formulaCache) ofFormula(f *formula.Formula) *fcEntry {
	fc.mu.RLock()
	ent, ok := fc.byPtr[f]
	fc.mu.RUnlock()
	if ok {
		return ent
	}
	ent = &fcEntry{f: f, canon: f.String()}
	fc.mu.Lock()
	if prev, ok := fc.byPtr[f]; ok {
		ent = prev
	} else if len(fc.byPtr) < formulaCacheCap {
		fc.byPtr[f] = ent
		if _, ok := fc.bySrc[ent.canon]; !ok {
			fc.bySrc[ent.canon] = ent
		}
	}
	fc.mu.Unlock()
	return ent
}

// aliasesOf returns the entry's alias list, computing it once. The slice
// is shared read-only by all callers.
func (fc *formulaCache) aliasesOf(ent *fcEntry) []string {
	fc.mu.RLock()
	aliases := ent.aliases
	fc.mu.RUnlock()
	if aliases != nil || ent.f == nil {
		return aliases
	}
	aliases = expr.Aliases(ent.f.Expr)
	fc.mu.Lock()
	if ent.aliases == nil {
		ent.aliases = aliases
	} else {
		aliases = ent.aliases
	}
	fc.mu.Unlock()
	return aliases
}

// parseFormula parses a formula string through the engine's formula cache:
// the cached equivalent of formula.ParseFormula. The returned formula is
// shared and must be treated as immutable.
func (e *Engine) parseFormula(src string) (*formula.Formula, error) {
	ent := e.fc.intern(src)
	return ent.f, ent.err
}

// canonicalFormula is the cached equivalent of CanonicalFormula.
func (e *Engine) canonicalFormula(src string) string {
	if src == "" {
		return ""
	}
	return e.fc.intern(src).canon
}

// truthLabel is the cached equivalent of TruthLabel: formula labels
// canonicalise through the formula cache instead of re-parsing per call
// (the simulated oracle asks for the truth label once per screen, training
// once per annotated claim per round).
func (e *Engine) truthLabel(t *claims.GroundTruth, kind PropertyKind) string {
	if t == nil {
		return ""
	}
	if kind == PropFormula {
		return e.canonicalFormula(t.Formula)
	}
	return TruthLabel(t, kind)
}

// formulaKey returns the canonical rendering of a parsed formula, cached
// by pointer — GenerateQueries needs it per formula per claim, and the
// formulas it sees almost always came out of the same cache.
func (e *Engine) formulaKey(f *formula.Formula) string {
	return e.fc.ofFormula(f).canon
}

// formulaAliases returns the cached alias list of a parsed formula.
func (e *Engine) formulaAliases(f *formula.Formula) []string {
	return e.fc.aliasesOf(e.fc.ofFormula(f))
}

// compiledProgram returns the compiled program for a canonical formula
// string, compiling and caching on first use; nil when uncompilable (a nil
// value is cached too, so rejected formulas fall back to the interpreter
// without recompiling per claim).
func (e *Engine) compiledProgram(fkey string, n expr.Node) *expr.Program {
	fc := e.fc
	ent := fc.intern(fkey)
	fc.mu.RLock()
	prog, ok := ent.prog, ent.progSet
	fc.mu.RUnlock()
	if ok {
		return prog
	}
	prog, err := expr.Compile(n)
	if err != nil {
		prog = nil
	}
	fc.mu.Lock()
	if ent.progSet {
		prog = ent.prog
	} else {
		ent.prog = prog
		ent.progSet = true
	}
	fc.mu.Unlock()
	return prog
}

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Library returns the formula library accumulated from training labels.
func (e *Engine) Library() *formula.Library { return e.lib }

// Model returns the classifier for a property kind.
func (e *Engine) Model(kind PropertyKind) *classifier.Classifier { return e.models[kind] }

// Generation returns the model generation: how many times retraining has
// refit the classifiers. Cached per-claim assessments are valid for
// exactly one generation; session front ends surface it as a progress /
// health signal.
func (e *Engine) Generation() uint64 {
	e.assessMu.RLock()
	defer e.assessMu.RUnlock()
	return e.gen
}

// Featurize returns (and caches) the feature vector of a claim. It is safe
// for concurrent use. The slice-backed Sparse vectors are already sorted,
// so no separate index cache is needed.
func (e *Engine) Featurize(c *claims.Claim) textproc.Sparse {
	e.featMu.RLock()
	v, ok := e.featCache[c.ID]
	e.featMu.RUnlock()
	if ok {
		return v
	}
	// Compute outside the lock: Vector is pure and featurization is
	// idempotent, so a racing duplicate computation is harmless.
	v = e.pipe.Vector(c.Sentence, c.Text)
	e.featMu.Lock()
	e.featCache[c.ID] = v
	e.featMu.Unlock()
	return v
}

// Train retrains all four classifiers from the annotated claims (those with
// Truth set). Claims without annotations are skipped. It also refreshes the
// formula library. Algorithm 1 calls this after every verified batch; once
// a property's label vocabulary stops growing the underlying classifier
// warm-starts from its previous weights instead of refitting from scratch
// (see package classifier). The four models train concurrently; see train.
func (e *Engine) Train(annotated []*claims.Claim) error {
	return e.train(annotated, DefaultParallelism())
}

// train is Train with an explicit fan-out: the four models are independent
// (own weights, own deterministic shuffle seed), so with parallelism > 1
// they train concurrently — on a multi-core machine this takes the
// per-batch retraining of Algorithm 1 from the sum of the four training
// times down to the slowest single model, which is the serial bottleneck
// of document verification at paper scale. Verify threads its
// VerifyConfig.Parallelism through here so a Parallelism=1 run is a truly
// sequential baseline.
func (e *Engine) train(annotated []*claims.Claim, parallelism int) error {
	sets := make(map[PropertyKind][]classifier.Example, 4)
	e.lib = formula.NewLibrary()
	for _, c := range annotated {
		if c == nil || c.Truth == nil {
			continue
		}
		f := e.Featurize(c)
		for _, k := range PropertyKinds() {
			label := e.truthLabel(c.Truth, k)
			if label == "" {
				continue
			}
			sets[k] = append(sets[k], classifier.Example{Features: f, Label: label})
		}
		if c.Truth.Formula != "" {
			// The cached equivalent of lib.AddString: the same annotation
			// formula re-enters training every round, so parse and render
			// it once.
			ent := e.fc.intern(c.Truth.Formula)
			if ent.err != nil {
				return fmt.Errorf("core: claim %d has malformed formula %q: %w", c.ID, c.Truth.Formula, ent.err)
			}
			e.lib.AddKeyed(ent.canon, ent.f)
		}
	}
	kinds := PropertyKinds()
	errs := make([]error, len(kinds))
	trainedAny := false
	for _, k := range kinds {
		if len(sets[k]) > 0 {
			trainedAny = true
			break
		}
	}
	runPool(len(kinds), parallelism, func(i int) {
		k := kinds[i]
		if len(sets[k]) == 0 {
			return // stay untrained for this property (cold start)
		}
		if err := e.models[k].Train(sets[k]); err != nil {
			errs[i] = fmt.Errorf("core: training %s classifier: %w", k, err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if trainedAny {
		// Model state changed: stamp a new generation so cached per-claim
		// assessments recompute lazily on next use.
		e.assessMu.Lock()
		e.gen++
		e.assessMu.Unlock()
	}
	return nil
}

// assess returns the claim's cached assessment, computing it when the
// cache misses or the model generation moved on. Classifier scoring is
// pure between Train calls, so concurrent duplicate computation (two
// workers racing the same cold claim) is deterministic and harmless — the
// last writer wins with an identical value.
func (e *Engine) assess(c *claims.Claim) *assessment {
	e.assessMu.RLock()
	a, ok := e.assessed[c.ID]
	gen := e.gen
	e.assessMu.RUnlock()
	if ok && a.gen == gen {
		return a
	}

	f := e.Featurize(c)
	a = &assessment{gen: gen, props: make([]planner.Property, 0, 4)}
	for _, k := range PropertyKinds() {
		top, entropy := e.models[k].Analyze(f, e.cfg.TopK)
		a.utility += entropy
		var opts []planner.Option
		for _, p := range top {
			opts = append(opts, planner.Option{Value: p.Label, Prob: p.Prob})
		}
		a.props = append(a.props, planner.Property{
			Name:    k.String(),
			Options: opts,
			// The query context (relations, keys, attributes) must be
			// validated by the crowd regardless of pruning power;
			// formulas are filtered by tentative execution instead
			// (§4.3) unless the greedy selection decides a formula
			// screen is worth its cost.
			Required: k != PropFormula,
		})
	}
	a.plan, a.planErr = planner.BuildPlan(planner.NewCandidateSpace(a.props), e.cfg.Cost)
	if a.planErr != nil {
		a.plan = nil
		a.cost = e.cfg.Cost.ManualCost()
	} else {
		a.cost = a.plan.ExpectedCost
	}

	e.assessMu.Lock()
	e.assessed[c.ID] = a
	e.assessMu.Unlock()
	return a
}

// assessMany fills the assessment cache for every listed claim that lacks
// a current-generation entry — the batch-scored scheduler round. Instead
// of assess's per-claim, per-kind scoring calls, all stale claims are
// featurized once, each property kind scores the whole set in one
// AnalyzeBatch pass over a dense feature matrix, and the per-claim
// options/properties are assembled into shared arenas (one allocation per
// round instead of per claim). Re-scoring is incremental across rounds: a
// retrain bumps the generation and every claim goes stale; rounds without
// a retrain reuse every cached assessment and score only never-seen
// claims. The assembled assessments are bit-identical to assess's (same
// accumulation order for the utility sum, same option values, same
// BuildPlan inputs), pinned by the batch-vs-sequential equivalence tests.
func (e *Engine) assessMany(cs []*claims.Claim, parallelism int) {
	e.assessMu.RLock()
	gen := e.gen
	stale := make([]*claims.Claim, 0, len(cs))
	for _, c := range cs {
		if a, ok := e.assessed[c.ID]; !ok || a.gen != gen {
			stale = append(stale, c)
		}
	}
	e.assessMu.RUnlock()
	if len(stale) == 0 {
		return
	}
	obsBatchScored(len(stale))
	n := len(stale)
	feats := make([]textproc.Sparse, n)
	runPool(n, parallelism, func(i int) { feats[i] = e.Featurize(stale[i]) })

	kinds := PropertyKinds()
	preds := make([][][]classifier.Prediction, len(kinds))
	ents := make([][]float64, len(kinds))
	runPool(len(kinds), parallelism, func(ki int) {
		preds[ki], ents[ki] = e.models[kinds[ki]].AnalyzeBatch(feats, e.cfg.TopK)
	})

	totalOpts := 0
	for ki := range kinds {
		for _, ps := range preds[ki] {
			totalOpts += len(ps)
		}
	}
	// Arena assembly: both appends stay within the precomputed capacity,
	// so the per-claim subslices remain valid.
	optArena := make([]planner.Option, 0, totalOpts)
	propArena := make([]planner.Property, 0, n*len(kinds))
	as := make([]*assessment, n)
	for i := range stale {
		a := &assessment{gen: gen}
		propStart := len(propArena)
		for ki, k := range kinds {
			a.utility += ents[ki][i]
			var opts []planner.Option
			if ps := preds[ki][i]; len(ps) > 0 {
				optStart := len(optArena)
				for _, p := range ps {
					optArena = append(optArena, planner.Option{Value: p.Label, Prob: p.Prob})
				}
				opts = optArena[optStart:len(optArena):len(optArena)]
			}
			propArena = append(propArena, planner.Property{
				Name:     k.String(),
				Options:  opts,
				Required: k != PropFormula, // see assess
			})
		}
		a.props = propArena[propStart:len(propArena):len(propArena)]
		as[i] = a
	}
	runPool(n, parallelism, func(i int) {
		a := as[i]
		a.plan, a.planErr = planner.BuildPlan(planner.NewCandidateSpace(a.props), e.cfg.Cost)
		if a.planErr != nil {
			a.plan = nil
			a.cost = e.cfg.Cost.ManualCost()
		} else {
			a.cost = a.plan.ExpectedCost
		}
	})
	e.assessMu.Lock()
	for i, c := range stale {
		e.assessed[c.ID] = as[i]
	}
	e.assessMu.Unlock()
}

// Candidates returns, for each property, the classifier's top-k options with
// probabilities — the raw material for question planning (§5.1) and query
// generation (§4.3). Untrained properties yield empty option lists. The
// underlying scoring is cached per model generation; the returned slices
// are fresh copies the caller owns.
func (e *Engine) Candidates(c *claims.Claim) []planner.Property {
	cached := e.assess(c).props
	out := make([]planner.Property, len(cached))
	for i, p := range cached {
		p.Options = append([]planner.Option(nil), p.Options...)
		out[i] = p
	}
	return out
}

// Utility is the training utility u(c) of Definition 7: the sum of the
// predictive entropies of all four models on the claim.
func (e *Engine) Utility(c *claims.Claim) float64 {
	return e.assess(c).utility
}

// PlanQuestions returns the §5.1 question plan for a claim under the
// current classifier state. The plan comes from the cached assessment —
// the same BuildPlan run that produced the scheduler's expected cost — and
// is shared read-only with all callers of this generation.
func (e *Engine) PlanQuestions(c *claims.Claim) (*planner.Plan, *planner.CandidateSpace, error) {
	a := e.assess(c)
	if a.planErr != nil {
		return nil, nil, a.planErr
	}
	return a.plan, planner.NewCandidateSpace(a.props), nil
}

// ExpectedCost estimates the crowd time (seconds) to verify the claim under
// the current models — the v(c) input to the scheduler (Definition 8).
func (e *Engine) ExpectedCost(c *claims.Claim) float64 {
	return e.assess(c).cost
}

// Assess returns the expected verification cost v(c) and training utility
// u(c) of a claim. Algorithm 1 needs both for every remaining claim before
// every batch, so this is the scheduler's hot path: the underlying scoring
// pass runs once per claim per model generation and is cached until the
// next retrain invalidates it.
func (e *Engine) Assess(c *claims.Claim) (cost, utility float64) {
	a := e.assess(c)
	return a.cost, a.utility
}
