// Package core implements the Scrutinizer engine itself: the four property
// classifiers glued to the feature pipeline (§3.1), query generation from
// classifier candidates (Algorithm 2), single-claim verification through
// planned question screens answered by a crowd (§5.1), and the main
// batch-verification loop with claim ordering (Algorithm 1, §5.2).
package core

import (
	"fmt"
	"strings"
	"sync"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/classifier"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/formula"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/table"
	"github.com/repro/scrutinizer/internal/textproc"
)

// PropertyKind enumerates the four query properties predicted by the
// classifiers.
type PropertyKind int

const (
	PropRelation PropertyKind = iota
	PropKey
	PropAttr
	PropFormula
)

// String implements fmt.Stringer.
func (p PropertyKind) String() string {
	switch p {
	case PropRelation:
		return "relation"
	case PropKey:
		return "key"
	case PropAttr:
		return "attribute"
	case PropFormula:
		return "formula"
	}
	return fmt.Sprintf("PropertyKind(%d)", int(p))
}

// PropertyKinds lists all four kinds in canonical order.
func PropertyKinds() []PropertyKind {
	return []PropertyKind{PropRelation, PropKey, PropAttr, PropFormula}
}

// labelSep joins multi-valued properties (e.g. two key values) into a single
// classification label; '|' never occurs in generated vocabulary.
const labelSep = "|"

// JoinLabel encodes a value list as one classifier label.
func JoinLabel(values []string) string { return strings.Join(values, labelSep) }

// SplitLabel decodes a classifier label back into its value list.
func SplitLabel(label string) []string {
	if label == "" {
		return nil
	}
	return strings.Split(label, labelSep)
}

// TruthLabel extracts the training label of one property from a ground-truth
// annotation. Formula labels are canonicalised (parsed and re-rendered) so
// that labels derived from annotations and labels derived from generalising
// accepted queries share one vocabulary.
func TruthLabel(t *claims.GroundTruth, kind PropertyKind) string {
	if t == nil {
		return ""
	}
	switch kind {
	case PropRelation:
		return JoinLabel(t.Relations)
	case PropKey:
		return JoinLabel(t.Keys)
	case PropAttr:
		return JoinLabel(t.Attrs)
	case PropFormula:
		return CanonicalFormula(t.Formula)
	}
	return ""
}

// CanonicalFormula parses and re-renders a formula string into the
// classifier's canonical label form; unparseable input is returned verbatim.
func CanonicalFormula(src string) string {
	if src == "" {
		return ""
	}
	f, err := formula.ParseFormula(src)
	if err != nil {
		return src
	}
	return f.String()
}

// Config parameterises the engine.
type Config struct {
	// Classifier configures all four models.
	Classifier classifier.Config
	// Cost is the §5.1 crowd cost model.
	Cost planner.CostModel
	// Tolerance is the admissible error rate e of Definition 2.
	Tolerance float64
	// TopK is how many candidates each classifier contributes per
	// property (the paper shows up to ten answer options per property in
	// the simulation).
	TopK int
	// MaxAssignments caps the brute-force variable-assignment loop of
	// Algorithm 2 per formula, keeping query generation sub-second as in
	// the paper.
	MaxAssignments int
	// MaxAlternates bounds how many non-matching queries are kept as
	// correction suggestions (Example 4).
	MaxAlternates int
}

// DefaultConfig mirrors the experimental setup of §6.
func DefaultConfig() Config {
	return Config{
		Classifier:     classifier.Config{Epochs: 6, LearningRate: 0.5, L2: 1e-4, Seed: 1},
		Cost:           planner.DefaultCostModel(),
		Tolerance:      0.05,
		TopK:           10,
		MaxAssignments: 20000,
		MaxAlternates:  5,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cost == (planner.CostModel{}) {
		c.Cost = d.Cost
	}
	if c.Tolerance <= 0 {
		c.Tolerance = d.Tolerance
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.MaxAssignments <= 0 {
		c.MaxAssignments = d.MaxAssignments
	}
	if c.MaxAlternates <= 0 {
		c.MaxAlternates = d.MaxAlternates
	}
	return c
}

// Engine is the assembled Scrutinizer system for one corpus + document pair.
type Engine struct {
	corpus *table.Corpus
	pipe   *feature.Pipeline
	cfg    Config

	models map[PropertyKind]*classifier.Classifier
	lib    *formula.Library

	// featMu guards the two caches below: claim verification fans out
	// across goroutines (Verify with Parallelism > 1) and Featurize is on
	// that shared path. Everything else the workers touch — classifier
	// scoring, the formula library, the corpus — is read-only between
	// training rounds.
	featMu    sync.RWMutex
	featCache map[int]textproc.Vector // claim ID -> features
	idxCache  map[int][]int           // claim ID -> sorted feature indices
}

// NewEngine wires an engine from a corpus and a fitted feature pipeline.
func NewEngine(corpus *table.Corpus, pipe *feature.Pipeline, cfg Config) (*Engine, error) {
	if corpus == nil {
		return nil, fmt.Errorf("core: nil corpus")
	}
	if pipe == nil {
		return nil, fmt.Errorf("core: nil feature pipeline")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Cost.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		corpus:    corpus,
		pipe:      pipe,
		cfg:       cfg,
		models:    make(map[PropertyKind]*classifier.Classifier, 4),
		lib:       formula.NewLibrary(),
		featCache: make(map[int]textproc.Vector),
		idxCache:  make(map[int][]int),
	}
	for _, k := range PropertyKinds() {
		e.models[k] = classifier.New(cfg.Classifier)
	}
	return e, nil
}

// Corpus returns the engine's relational corpus.
func (e *Engine) Corpus() *table.Corpus { return e.corpus }

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Library returns the formula library accumulated from training labels.
func (e *Engine) Library() *formula.Library { return e.lib }

// Model returns the classifier for a property kind.
func (e *Engine) Model(kind PropertyKind) *classifier.Classifier { return e.models[kind] }

// Featurize returns (and caches) the feature vector of a claim. It is safe
// for concurrent use.
func (e *Engine) Featurize(c *claims.Claim) textproc.Vector {
	e.featMu.RLock()
	v, ok := e.featCache[c.ID]
	e.featMu.RUnlock()
	if ok {
		return v
	}
	// Compute outside the lock: Vector is pure and featurization is
	// idempotent, so a racing duplicate computation is harmless.
	v = e.pipe.Vector(c.Sentence, c.Text)
	idx := v.Indices()
	e.featMu.Lock()
	e.featCache[c.ID] = v
	e.idxCache[c.ID] = idx
	e.featMu.Unlock()
	return v
}

// featIdx returns the cached sorted index list of a claim's features.
func (e *Engine) featIdx(c *claims.Claim) []int {
	e.featMu.RLock()
	idx, ok := e.idxCache[c.ID]
	e.featMu.RUnlock()
	if ok {
		return idx
	}
	e.Featurize(c)
	e.featMu.RLock()
	defer e.featMu.RUnlock()
	return e.idxCache[c.ID]
}

// Train retrains all four classifiers from the annotated claims (those with
// Truth set). Claims without annotations are skipped. It also refreshes the
// formula library. Algorithm 1 calls this after every verified batch.
// The four models train concurrently; see train.
func (e *Engine) Train(annotated []*claims.Claim) error {
	return e.train(annotated, DefaultParallelism())
}

// train is Train with an explicit fan-out: the four models are independent
// (own weights, own deterministic shuffle seed), so with parallelism > 1
// they train concurrently — on a multi-core machine this takes the
// per-batch retraining of Algorithm 1 from the sum of the four training
// times down to the slowest single model, which is the serial bottleneck
// of document verification at paper scale. Verify threads its
// VerifyConfig.Parallelism through here so a Parallelism=1 run is a truly
// sequential baseline.
func (e *Engine) train(annotated []*claims.Claim, parallelism int) error {
	sets := make(map[PropertyKind][]classifier.Example, 4)
	e.lib = formula.NewLibrary()
	for _, c := range annotated {
		if c == nil || c.Truth == nil {
			continue
		}
		f := e.Featurize(c)
		for _, k := range PropertyKinds() {
			label := TruthLabel(c.Truth, k)
			if label == "" {
				continue
			}
			sets[k] = append(sets[k], classifier.Example{Features: f, Label: label})
		}
		if c.Truth.Formula != "" {
			if _, err := e.lib.AddString(c.Truth.Formula); err != nil {
				return fmt.Errorf("core: claim %d has malformed formula %q: %w", c.ID, c.Truth.Formula, err)
			}
		}
	}
	kinds := PropertyKinds()
	errs := make([]error, len(kinds))
	runPool(len(kinds), parallelism, func(i int) {
		k := kinds[i]
		if len(sets[k]) == 0 {
			return // stay untrained for this property (cold start)
		}
		if err := e.models[k].Train(sets[k]); err != nil {
			errs[i] = fmt.Errorf("core: training %s classifier: %w", k, err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Candidates returns, for each property, the classifier's top-k options with
// probabilities — the raw material for question planning (§5.1) and query
// generation (§4.3). Untrained properties yield empty option lists.
func (e *Engine) Candidates(c *claims.Claim) []planner.Property {
	f := e.Featurize(c)
	idx := e.featIdx(c)
	out := make([]planner.Property, 0, 4)
	for _, k := range PropertyKinds() {
		var opts []planner.Option
		for _, p := range e.models[k].TopKIdx(f, idx, e.cfg.TopK) {
			opts = append(opts, planner.Option{Value: p.Label, Prob: p.Prob})
		}
		out = append(out, planner.Property{
			Name:    k.String(),
			Options: opts,
			// The query context (relations, keys, attributes) must be
			// validated by the crowd regardless of pruning power;
			// formulas are filtered by tentative execution instead
			// (§4.3) unless the greedy selection decides a formula
			// screen is worth its cost.
			Required: k != PropFormula,
		})
	}
	return out
}

// Utility is the training utility u(c) of Definition 7: the sum of the
// predictive entropies of all four models on the claim.
func (e *Engine) Utility(c *claims.Claim) float64 {
	f := e.Featurize(c)
	idx := e.featIdx(c)
	var u float64
	for _, k := range PropertyKinds() {
		u += e.models[k].EntropyIdx(f, idx)
	}
	return u
}

// PlanQuestions builds the §5.1 question plan for a claim from the current
// classifier state.
func (e *Engine) PlanQuestions(c *claims.Claim) (*planner.Plan, *planner.CandidateSpace, error) {
	cs := planner.NewCandidateSpace(e.Candidates(c))
	plan, err := planner.BuildPlan(cs, e.cfg.Cost)
	if err != nil {
		return nil, nil, err
	}
	return plan, cs, nil
}

// ExpectedCost estimates the crowd time (seconds) to verify the claim under
// the current models — the v(c) input to the scheduler (Definition 8).
func (e *Engine) ExpectedCost(c *claims.Claim) float64 {
	cost, _ := e.Assess(c)
	return cost
}

// Assess returns the expected verification cost v(c) and training utility
// u(c) of a claim from one scoring pass per model (Algorithm 1 needs both
// for every remaining claim before every batch, so this is the scheduler's
// hot path).
func (e *Engine) Assess(c *claims.Claim) (cost, utility float64) {
	f := e.Featurize(c)
	idx := e.featIdx(c)
	props := make([]planner.Property, 0, 4)
	for _, k := range PropertyKinds() {
		top, entropy := e.models[k].Analyze(f, idx, e.cfg.TopK)
		utility += entropy
		var opts []planner.Option
		for _, p := range top {
			opts = append(opts, planner.Option{Value: p.Label, Prob: p.Prob})
		}
		props = append(props, planner.Property{
			Name:     k.String(),
			Options:  opts,
			Required: k != PropFormula,
		})
	}
	plan, err := planner.BuildPlan(planner.NewCandidateSpace(props), e.cfg.Cost)
	if err != nil {
		return e.cfg.Cost.ManualCost(), utility
	}
	return plan.ExpectedCost, utility
}
