package core

import (
	"context"
	"testing"

	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/crowd"
)

func TestNewTeamOracleValidation(t *testing.T) {
	e, _ := buildEngine(t, tinyWorld())
	if _, err := e.NewTeamOracle(nil); err == nil {
		t.Error("nil team accepted")
	}
	if _, err := e.NewTeamOracle(&crowd.Team{}); err == nil {
		t.Error("empty team accepted")
	}
	team, err := crowd.NewTeam("O", 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewTeamOracle(team); err != nil {
		t.Errorf("valid team rejected: %v", err)
	}
}

func TestVerifyClaimWithValidation(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if _, err := e.VerifyClaimWith(context.Background(), nil, &ScriptedOracle{}); err == nil {
		t.Error("nil claim accepted")
	}
	if _, err := e.VerifyClaimWith(context.Background(), w.Document.Claims[0], nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

// TestScriptedOracleDrivesVerification shows the mixed-initiative flow with
// pre-recorded human answers: the scripted context plus formula produce the
// verifying query without any ground-truth plumbing inside the engine. The
// engine is trained so that every property (including the formula) earns a
// question screen; on a cold engine the human would instead write the query
// on the final screen (see TestScriptedOracleHandWrittenSQL).
func TestScriptedOracleDrivesVerification(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	if err := e.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	c := w.Document.Claims[0]
	script := &ScriptedOracle{
		Properties: map[int]map[PropertyKind]string{
			c.ID: {
				PropRelation: JoinLabel(c.Truth.Relations),
				PropKey:      JoinLabel(c.Truth.Keys),
				PropAttr:     JoinLabel(c.Truth.Attrs),
				PropFormula:  CanonicalFormula(c.Truth.Formula),
			},
		},
		SecondsPerAnswer: 7,
	}
	out, err := e.VerifyClaimWith(context.Background(), c, script)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == VerdictSkipped {
		t.Fatalf("scripted verification skipped: %+v", out)
	}
	if (out.Verdict == VerdictCorrect) != c.Correct {
		t.Errorf("verdict %v, claim Correct=%v", out.Verdict, c.Correct)
	}
	// 3 context screens + formula screen + final = 5 answers at 7s.
	if out.Seconds != 5*7 {
		t.Errorf("seconds = %g, want 35", out.Seconds)
	}
}

// TestScriptedOracleWithoutAnswersSkips: an oracle with no script and no
// candidates cannot resolve cold-start claims; the engine skips gracefully.
func TestScriptedOracleWithoutAnswersSkips(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[1]
	out, err := e.VerifyClaimWith(context.Background(), c, &ScriptedOracle{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictSkipped {
		t.Errorf("verdict = %v, want skipped", out.Verdict)
	}
	if out.Query != nil {
		t.Error("skipped outcome should carry no query")
	}
}

// TestScriptedOracleHandWrittenSQL: the scripted final answer can be a
// hand-written query that the engine parses and executes (the "suggest new
// option" path of §5.1 for real humans).
func TestScriptedOracleHandWrittenSQL(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	c := w.Document.Claims[2]
	truthQ, err := e.TruthQuery(c)
	if err != nil {
		t.Fatal(err)
	}
	script := &ScriptedOracle{
		Finals:           map[int]string{c.ID: truthQ.SQL()},
		SecondsPerAnswer: 3,
	}
	out, err := e.VerifyClaimWith(context.Background(), c, script)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == VerdictSkipped {
		t.Fatal("hand-written SQL should be accepted")
	}
	if out.Query == nil || out.Query.SQL() != truthQ.SQL() {
		t.Errorf("accepted query = %v", out.Query)
	}
}

// TestGeneralClaimWithoutTruthSkips covers the oracle flow on a claim with
// no annotation and no parameter (nothing to judge against).
func TestGeneralClaimWithoutTruthSkips(t *testing.T) {
	e, w := buildEngine(t, tinyWorld())
	donor := w.Document.Claims[0]
	truthQ, err := e.TruthQuery(donor)
	if err != nil {
		t.Fatal(err)
	}
	c := &claims.Claim{ID: 9999, Text: "mystery level", Sentence: "mystery level", Kind: claims.General}
	script := &ScriptedOracle{Finals: map[int]string{c.ID: truthQ.SQL()}}
	out, err := e.VerifyClaimWith(context.Background(), c, script)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictSkipped {
		t.Errorf("verdict = %v, want skipped (nothing to judge)", out.Verdict)
	}
}
