package scrutinizer

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/repro/scrutinizer/internal/session"
	"github.com/repro/scrutinizer/internal/store"
)

// This file is the library half of the crash-recovery harness (the HTTP
// half lives in cmd/scrutinizerd): a service with an attached store is
// driven partway through the /v1 lifecycle, "crashes" (the live objects are
// abandoned), and a fresh service recovers from the journal. The assertions
// are bit-identity — recovery is only correct if the recovered registry
// verifies exactly like the one that never crashed.

// recoveryWorld is a small world: recovery tests replay journals many times
// over, so the per-replay training cost matters.
func recoveryWorld(t *testing.T) *World {
	t.Helper()
	cfg := SmallWorld()
	cfg.NumClaims = 16
	cfg.NumSections = 3
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// attachedService builds an empty service attached to st (Recover on a
// fresh store is the documented way to attach).
func attachedService(t *testing.T, st Store, mgr *SessionManager) *Service {
	t.Helper()
	svc := NewService()
	if _, err := svc.Recover(st, mgr); err != nil {
		t.Fatal(err)
	}
	return svc
}

// answerNext feeds the session's first pending question a fixed answer —
// the deterministic checker of the harness: both the reference run and the
// recovered run answer every question identically, so their final reports
// must agree bit for bit.
func answerNext(t *testing.T, sess *Session) {
	t.Helper()
	qs := sess.Questions()
	if len(qs) == 0 {
		t.Fatal("no pending questions")
	}
	if _, err := sess.Answer(context.Background(), SessionAnswer{ClaimID: qs[0].ClaimID, Value: "suggestion", Seconds: 2}); err != nil {
		t.Fatal(err)
	}
}

// driveToCompletion answers until the session reports done.
func driveToCompletion(t *testing.T, sess *Session) {
	t.Helper()
	for i := 0; !sess.Done(); i++ {
		if i > 10000 {
			t.Fatal("session did not converge")
		}
		answerNext(t, sess)
	}
}

// mustEqualReports asserts two session reports are bit-identical.
func mustEqualReports(t *testing.T, label string, want, got SessionReport) {
	t.Helper()
	if want.Done != got.Done || want.Seconds != got.Seconds ||
		want.Batches != got.Batches || want.Accuracy != got.Accuracy {
		t.Fatalf("%s: report header diverged: %+v vs %+v", label, got, want)
	}
	if len(want.Outcomes) != len(got.Outcomes) {
		t.Fatalf("%s: outcome counts %d vs %d", label, len(got.Outcomes), len(want.Outcomes))
	}
	for i := range want.Outcomes {
		a, b := want.Outcomes[i], got.Outcomes[i]
		if a.ClaimID != b.ClaimID || a.Verdict != b.Verdict || a.Seconds != b.Seconds ||
			a.Value != b.Value || a.HasSuggestion != b.HasSuggestion || a.Suggestion != b.Suggestion {
			t.Fatalf("%s: outcome %d diverged: %+v vs %+v", label, i, b, a)
		}
	}
}

// TestRecoveryRoundTrip is the core harness: drive a corpus + verifier +
// interactive session partway, recover a fresh service from the journal,
// and assert the recovered registry is bit-identical to the uninterrupted
// one — same session state, same remaining walkthrough, same batch-run
// verdicts from the recovered verifier.
func TestRecoveryRoundTrip(t *testing.T) {
	w := recoveryWorld(t)
	docA, docB := splitWorldDoc(w)
	st := NewMemoryStore()
	mgr := NewSessionManager(0, 0)
	svc := attachedService(t, st, mgr)

	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		t.Fatal(err)
	}
	v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := v.StartSession(context.Background(), mgr, docA, SessionOptions{Verify: VerifyOptions{BatchSize: 6, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		answerNext(t, sess)
	}
	preCrash := sess.Progress()

	// "Crash": the live service is abandoned; only the store survives.
	mgr2 := NewSessionManager(0, 0)
	svc2 := NewService()
	stats, err := svc2.Recover(st, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corpora != 1 || stats.Verifiers != 1 || stats.Sessions != 1 || stats.SessionsSkipped != 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	if stats.VerifiersFromSnapshot != 1 || stats.VerifiersRetrained != 0 {
		t.Fatalf("verifier should restore from its model snapshot: %+v", stats)
	}

	sess2, ok := mgr2.Get(sess.ID())
	if !ok {
		t.Fatalf("session %q not recovered", sess.ID())
	}
	if sess2.Owner() != v.ID() {
		t.Fatalf("recovered session owner %q, want %q", sess2.Owner(), v.ID())
	}
	p := sess2.Progress()
	if p.Answered != preCrash.Answered || p.Verified != preCrash.Verified ||
		p.Batches != preCrash.Batches || p.PendingQuestions != preCrash.PendingQuestions ||
		p.CrowdSeconds != preCrash.CrowdSeconds || p.ModelGeneration != preCrash.ModelGeneration {
		t.Fatalf("recovered progress diverged:\n  got  %+v\n  want %+v", p, preCrash)
	}
	if !reflect.DeepEqual(sess2.Questions(), sess.Questions()) {
		t.Fatal("recovered session queues different questions")
	}

	// Finish both sessions with the same deterministic checker: the
	// recovered walkthrough must end in the same report.
	driveToCompletion(t, sess)
	driveToCompletion(t, sess2)
	mustEqualReports(t, "session after recovery", sess.Report(), sess2.Report())

	// And the recovered verifier verifies a second document bit-identically.
	v2, ok := svc2.Verifier(v.ID())
	if !ok {
		t.Fatal("verifier not recovered")
	}
	batch := func(vv *Verifier) *Result {
		run, err := vv.StartRun(context.Background(), docB)
		if err != nil {
			t.Fatal(err)
		}
		team, err := vv.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Verify(context.Background(), team, VerifyOptions{BatchSize: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mustEqualResults(t, "batch run after recovery", batch(v), batch(v2))
}

// TestRecoveryRetrainFallback pins the snapshot-less path: when no model
// snapshot survives (here: a store whose journal was copied without blobs),
// the verifier is deterministically retrained from the journaled training
// document and still verifies bit-identically.
func TestRecoveryRetrainFallback(t *testing.T) {
	w := recoveryWorld(t)
	_, docB := splitWorldDoc(w)
	st := NewMemoryStore()
	svc := attachedService(t, st, nil)
	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		t.Fatal(err)
	}
	v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Journal only, no snapshots: CloneWithPrefix copies every record and
	// drops the blobs.
	bare := st.CloneWithPrefix(int(st.Stats().Records))
	svc2 := NewService()
	stats, err := svc2.Recover(bare, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerifiersRetrained != 1 || stats.VerifiersFromSnapshot != 0 {
		t.Fatalf("expected retrain fallback: %+v", stats)
	}
	v2, ok := svc2.Verifier(v.ID())
	if !ok {
		t.Fatal("verifier not recovered")
	}
	if v2.TrainedOn() != v.TrainedOn() {
		t.Fatalf("trained_on %d vs %d", v2.TrainedOn(), v.TrainedOn())
	}
	batch := func(vv *Verifier) *Result {
		run, err := vv.StartRun(context.Background(), docB)
		if err != nil {
			t.Fatal(err)
		}
		team, err := vv.NewTeam(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Verify(context.Background(), team, VerifyOptions{BatchSize: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mustEqualResults(t, "retrained verifier", batch(v), batch(v2))
}

// registrySummary flattens the recoverable state into comparable strings:
// corpora with their shapes, verifiers with their training counts, and the
// progress of every session in ids.
func registrySummary(svc *Service, mgr *SessionManager, ids []string) []string {
	var out []string
	for _, ci := range svc.Corpora() {
		out = append(out, fmt.Sprintf("corpus %s rel=%d rows=%d cells=%d", ci.ID, ci.Relations, ci.Rows, ci.Cells))
	}
	for _, vi := range svc.Verifiers() {
		out = append(out, fmt.Sprintf("verifier %s corpus=%s trained=%d", vi.ID, vi.CorpusID, vi.TrainedOn))
	}
	if mgr != nil {
		for _, id := range ids {
			sess, ok := mgr.Get(id)
			if !ok {
				out = append(out, fmt.Sprintf("session %s gone", id))
				continue
			}
			p := sess.Progress()
			out = append(out, fmt.Sprintf("session %s answered=%d verified=%d batches=%d pending=%d secs=%v done=%v",
				id, p.Answered, p.Verified, p.Batches, p.PendingQuestions, p.CrowdSeconds, p.Done))
		}
	}
	return out
}

// TestRecoveryJournalPrefixProperty is the property test: after every
// single mutation of a full walkthrough, the live registry state is
// captured; recovering a fresh service from exactly that journal prefix
// must reproduce the captured state. Since every mutation appends exactly
// one record, the checkpoints cover every journal prefix.
func TestRecoveryJournalPrefixProperty(t *testing.T) {
	w := recoveryWorld(t)
	docA, _ := splitWorldDoc(w)
	st := NewMemoryStore()
	mgr := NewSessionManager(0, 0)
	svc := attachedService(t, st, mgr)

	var sessIDs []string
	type checkpoint struct {
		records int
		ids     []string
		summary []string
	}
	var checkpoints []checkpoint
	mark := func() {
		ids := append([]string(nil), sessIDs...)
		checkpoints = append(checkpoints, checkpoint{
			records: int(st.Stats().Records),
			ids:     ids,
			summary: registrySummary(svc, mgr, ids),
		})
	}

	mark() // empty prefix
	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		t.Fatal(err)
	}
	mark()
	v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mark()
	sess, err := v.StartSession(context.Background(), mgr, docA, SessionOptions{Verify: VerifyOptions{BatchSize: 5, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	sessIDs = append(sessIDs, sess.ID())
	mark()
	for i := 0; i < 3; i++ {
		answerNext(t, sess)
		mark()
	}

	// A scratch corpus exercises relation put/delete/put and the delete
	// cascade over a second verifier.
	if _, err := svc.AddCorpus("scratch", NewCorpus()); err != nil {
		t.Fatal(err)
	}
	mark()
	rel, err := w.Corpus.Relation(w.Corpus.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PutRelation("scratch", rel); err != nil {
		t.Fatal(err)
	}
	mark()
	if existed, err := svc.DropRelation("scratch", rel.Name()); err != nil || !existed {
		t.Fatalf("DropRelation: existed=%v err=%v", existed, err)
	}
	mark()
	if _, err := svc.PutRelation("scratch", rel); err != nil {
		t.Fatal(err)
	}
	mark()
	if ok, err := svc.RemoveCorpus("scratch"); err != nil || !ok {
		t.Fatalf("RemoveCorpus: ok=%v err=%v", ok, err)
	}
	mark()
	if removed := mgr.Remove(sess.ID()); !removed {
		t.Fatal("Remove session failed")
	}
	mark()

	if got := int(st.Stats().Records); got != len(checkpoints)-1 {
		t.Fatalf("each mutation should journal exactly one record: %d records, %d checkpoints", got, len(checkpoints))
	}

	for _, cp := range checkpoints {
		prefix := st.CloneWithPrefix(cp.records)
		mgr2 := NewSessionManager(0, 0)
		svc2 := NewService()
		if _, err := svc2.Recover(prefix, mgr2); err != nil {
			t.Fatalf("prefix %d: recover: %v", cp.records, err)
		}
		got := registrySummary(svc2, mgr2, cp.ids)
		if !reflect.DeepEqual(got, cp.summary) {
			t.Fatalf("prefix %d diverged:\n  got  %v\n  want %v", cp.records, got, cp.summary)
		}
	}
}

// fakeClock is a deterministic time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRecoveryExpiredSessionNotResurrected: a session evicted by the TTL
// sweep journals its deletion, so recovery must not bring it back — an
// expired walkthrough stays expired across a restart.
func TestRecoveryExpiredSessionNotResurrected(t *testing.T) {
	w := recoveryWorld(t)
	docA, _ := splitWorldDoc(w)
	st := NewMemoryStore()
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	mgr := session.NewManager(session.Config{TTL: time.Minute, Clock: clk.Now})
	svc := attachedService(t, st, mgr)

	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		t.Fatal(err)
	}
	v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := v.StartSession(context.Background(), mgr, docA, SessionOptions{Verify: VerifyOptions{BatchSize: 5}})
	if err != nil {
		t.Fatal(err)
	}
	answerNext(t, sess)
	id := sess.ID()

	clk.Advance(2 * time.Minute)
	if stats := mgr.Stats(); stats.Active != 0 || stats.EvictedTotal != 1 {
		t.Fatalf("session should be TTL-evicted: %+v", stats)
	}

	// The eviction must be durable: a fresh recovery sees the delete
	// record and does not re-park the session.
	mgr2 := NewSessionManager(0, 0)
	svc2 := NewService()
	stats, err := svc2.Recover(st, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 0 || stats.SessionsSkipped != 0 {
		t.Fatalf("expired session resurrected: %+v", stats)
	}
	if _, ok := mgr2.Get(id); ok {
		t.Fatalf("session %q came back from the dead", id)
	}
	if stats.Verifiers != 1 {
		t.Fatalf("verifier should survive: %+v", stats)
	}
}

// TestRecoveryJournalFailureRollsBack: when the store stops accepting
// appends (fault injection), every mutation is rolled back and surfaces
// ErrJournal — the registry never acknowledges state the journal does not
// hold, so a recovery matches exactly what clients were told succeeded.
func TestRecoveryJournalFailureRollsBack(t *testing.T) {
	w := recoveryWorld(t)
	docA, _ := splitWorldDoc(w)
	inner := NewMemoryStore()
	faulty := NewFaultyStore(inner, 2, false) // corpus create + verifier create succeed
	mgr := NewSessionManager(0, 0)
	svc := attachedService(t, faulty, mgr)

	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		t.Fatal(err)
	}
	v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// Budget exhausted: every further mutation must fail with ErrJournal
	// and leave no trace.
	if _, err := v.StartSession(context.Background(), mgr, docA, SessionOptions{}); err == nil {
		t.Fatal("StartSession acknowledged without a journal record")
	}
	if stats := mgr.Stats(); stats.Active != 0 {
		t.Fatalf("rolled-back session still registered: %+v", stats)
	}
	if _, err := svc.AddCorpus("doomed", NewCorpus()); !errors.Is(err, ErrJournal) || !errors.Is(err, store.ErrInjected) {
		t.Fatalf("AddCorpus: want ErrJournal wrapping the injected fault, got %v", err)
	}
	if _, ok := svc.Corpus("doomed"); ok {
		t.Fatal("rolled-back corpus still registered")
	}
	if ok, err := svc.RemoveVerifier(v.ID()); !errors.Is(err, ErrJournal) || ok {
		t.Fatalf("RemoveVerifier: want ErrJournal, got ok=%v err=%v", ok, err)
	}
	if _, ok := svc.Verifier(v.ID()); !ok {
		t.Fatal("failed removal lost the verifier")
	}
	if ok, err := svc.RemoveCorpus("world"); !errors.Is(err, ErrJournal) || ok {
		t.Fatalf("RemoveCorpus: want ErrJournal, got ok=%v err=%v", ok, err)
	}
	if _, ok := svc.Corpus("world"); !ok {
		t.Fatal("failed removal lost the corpus")
	}
	if !faulty.Tripped() {
		t.Fatal("fault injector never tripped")
	}

	// The journal holds exactly the two acknowledged mutations.
	svc2 := NewService()
	stats, err := svc2.Recover(inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.Corpora != 1 || stats.Verifiers != 1 {
		t.Fatalf("recovered more or less than was acknowledged: %+v", stats)
	}
}

// TestRecoveryRequiresEmptyService: Recover is a boot-time call; a
// populated registry must refuse it rather than merge.
func TestRecoveryRequiresEmptyService(t *testing.T) {
	w := recoveryWorld(t)
	svc := NewService()
	if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Recover(NewMemoryStore(), nil); err == nil {
		t.Fatal("Recover merged into a populated service")
	}
	if _, err := svc.Recover(nil, nil); err == nil {
		t.Fatal("Recover accepted a nil store")
	}
}
