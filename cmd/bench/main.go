// Command bench runs the tracked benchmark suite with -benchmem and writes
// the results to BENCH_<date>.json, so the repository accumulates a
// machine-readable performance trajectory alongside the paper-figure
// numbers. Run it from the repository root after perf-relevant changes:
//
//	go run ./cmd/bench                    # default tracked set, 1s per bench
//	go run ./cmd/bench -benchtime 2s      # steadier numbers
//	go run ./cmd/bench -bench 'Train' -pkg ./internal/classifier
//	go run ./cmd/bench -out /tmp -date 2026-01-31
//	go run ./cmd/bench -baseline BENCH_2026-08-08.json -max-ratio 2
//	go run ./cmd/bench -cpu 2          # multi-core pass -> BENCH_<date>.cpu2.json
//
// The default tracked set covers the numeric hot path (classifier training
// and scoring, sparse-vector ops, TF-IDF transform), the end-to-end
// document verification loop, and the interactive session lifecycle
// (create / answer-pump / evict). Each record carries ns/op, B/op,
// allocs/op and any custom b.ReportMetric metrics, plus enough environment
// metadata (go version, CPU, GOMAXPROCS) to make cross-machine comparisons
// honest.
//
// With -baseline the run is also a regression gate: each fresh ns/op is
// compared against the same-named benchmark in the given BENCH_*.json and
// the process exits non-zero when any tracked benchmark slowed down by
// more than -max-ratio (default 2x). allocs/op is gated the same way under
// its own -max-alloc-ratio (default 1.5x — allocation counts are nearly
// deterministic, so the threshold can be much tighter than the timing
// one). Benchmarks missing from the baseline are reported but do not fail
// the gate, so new benchmarks can land before the baseline is refreshed.
// Ratios, not absolute numbers, keep the gate meaningful across machines
// of similar class; the wide 2x timing threshold absorbs the remaining
// machine-to-machine spread.
//
// -cpu N reruns the whole suite under `go test -cpu N` (GOMAXPROCS=N) and
// writes BENCH_<date>.cpuN.json instead, with gomaxprocs recorded as N —
// the committed multi-core baseline that keeps the parallel paths honest
// next to the single-core one.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/repro/scrutinizer/internal/core"
)

// trackedBench names one benchmark selection: a package and a -bench regex.
type trackedBench struct {
	Pkg   string
	Bench string
}

// defaultTracked is the curated paper-figure + hot-path set. The classifier
// three are the acceptance benchmarks of the sparse-engine rewrite; the
// table/query/core trio are the acceptance benchmarks of the compiled
// query engine (BenchmarkGenerateQueries vs its Interpreted reference is
// the ≥5x ratio); the root Verify pair is the serving-throughput headline.
// BenchmarkVerifyInstrumented vs BenchmarkVerifyEndToEnd pins the cost of
// the run-lifecycle metric hooks: <2% ns/op and equal allocs/op.
var defaultTracked = []trackedBench{
	{Pkg: "./internal/classifier", Bench: "BenchmarkTrain500x200|BenchmarkWarmRetrain500x200|BenchmarkPredictTopK|BenchmarkEntropy"},
	{Pkg: "./internal/textproc", Bench: "BenchmarkSparseDot|BenchmarkTransform"},
	{Pkg: "./internal/table", Bench: "BenchmarkCellLookup$|BenchmarkCellLookupString"},
	{Pkg: "./internal/query", Bench: "BenchmarkPlanExecute|BenchmarkExecuteCompiled|BenchmarkExecuteInterpreted"},
	{Pkg: "./internal/core", Bench: "BenchmarkGenerateQueries$|BenchmarkGenerateQueriesCold|BenchmarkGenerateQueriesInterpreted|BenchmarkVerifyEndToEnd|BenchmarkVerifyWithDeadline|BenchmarkVerifyInstrumented"},
	{Pkg: "./internal/session", Bench: "BenchmarkSessionCreate|BenchmarkSessionAnswerPump|BenchmarkSessionEvict"},
	{Pkg: ".", Bench: "BenchmarkVerifySequential/SmallWorld|BenchmarkVerifyParallel/SmallWorld|BenchmarkServiceVerifyCold|BenchmarkServiceVerifyWarm|BenchmarkServiceSetupCold|BenchmarkServiceSetupWarm|BenchmarkRecoveryBoot|BenchmarkConcurrentRunsSharedCorpus|BenchmarkServiceManyTenants"},
}

// result is one benchmark line, parsed.
type result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// report is the BENCH_<date>.json document.
type report struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// QueryCacheShards records the striping width of the shared
	// tentative-execution cache — the knob the concurrent benchmarks are
	// most sensitive to, so cross-commit comparisons can tell a code
	// change from a topology change.
	QueryCacheShards int      `json:"query_cache_shards"`
	BenchTime        string   `json:"benchtime"`
	Benchmarks       []result `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8  123  456 ns/op  <metrics...>".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	benchRe := flag.String("bench", "", "benchmark regex (overrides the tracked set)")
	pkg := flag.String("pkg", "", "package pattern to bench (with -bench; default tracked set)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value (e.g. 2s, 10x)")
	out := flag.String("out", ".", "directory for BENCH_<date>.json")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the output file")
	baseline := flag.String("baseline", "", "BENCH_*.json to gate against; exit non-zero on regressions")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when fresh ns/op exceeds baseline ns/op by this factor (with -baseline)")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 1.5, "fail when fresh allocs/op exceeds baseline allocs/op by this factor (with -baseline; 0 disables)")
	cpuN := flag.Int("cpu", 0, "run the suite under `go test -cpu N` and write BENCH_<date>.cpuN.json (0: current GOMAXPROCS)")
	flag.Parse()

	tracked := defaultTracked
	if *benchRe != "" {
		p := *pkg
		if p == "" {
			p = "./..."
		}
		tracked = []trackedBench{{Pkg: p, Bench: *benchRe}}
	}

	rep := report{
		Date:             *date,
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		QueryCacheShards: core.QueryCacheShards,
		BenchTime:        *benchtime,
	}
	if *cpuN > 0 {
		rep.GOMAXPROCS = *cpuN
	}
	for _, t := range tracked {
		results, cpu, err := runBench(t, *benchtime, *cpuN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", t.Pkg, err)
			os.Exit(1)
		}
		if cpu != "" {
			rep.CPU = cpu
		}
		rep.Benchmarks = append(rep.Benchmarks, results...)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmarks matched")
		os.Exit(1)
	}

	name := "BENCH_" + *date + ".json"
	if *cpuN > 0 {
		name = fmt.Sprintf("BENCH_%s.cpu%d.json", *date, *cpuN)
	}
	path := filepath.Join(*out, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		fmt.Printf("  %-45s %14.0f ns/op %12.0f B/op %8.0f allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}

	if *baseline != "" {
		if err := gateAgainstBaseline(*baseline, tracked, rep.Benchmarks, *benchtime, *cpuN, *maxRatio, *maxAllocRatio); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// regression is one benchmark measurement (timing or allocation count)
// that came in worse than the baseline allows.
type regression struct {
	res   result
	unit  string // "ns/op" or "allocs/op"
	fresh float64
	base  float64
}

func (r regression) String() string {
	return fmt.Sprintf("%-45s %.2fx worse (%.0f %s vs %.0f %s baseline)",
		r.res.Name, r.fresh/r.base, r.fresh, r.unit, r.base, r.unit)
}

// gateAgainstBaseline fails (returns an error) when any fresh benchmark is
// more than maxRatio slower — or allocates more than maxAllocRatio times
// as often — as its committed baseline entry. Suspected regressions are
// re-measured once before failing: on shared CI runners a noisy neighbour
// can slow a microbenchmark past 2x, but a genuine regression reproduces;
// only benchmarks bad in both passes fail the gate. Benchmarks absent from
// the baseline are reported and skipped (they are new; the next baseline
// refresh covers them).
func gateAgainstBaseline(path string, tracked []trackedBench, fresh []result, benchtime string, cpuN int, maxRatio, maxAllocRatio float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := make(map[string]result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	regressions := findRegressions(fresh, baseBy, maxRatio, maxAllocRatio)
	if len(regressions) > 0 {
		fmt.Printf("re-measuring %d suspected regression(s) to rule out runner noise\n", len(regressions))
		pkgs := map[string]bool{}
		for _, r := range regressions {
			pkgs[r.res.Package] = true
		}
		var retried []result
		for _, t := range tracked {
			if !pkgs[t.Pkg] {
				continue
			}
			results, _, err := runBench(t, benchtime, cpuN)
			if err != nil {
				return err
			}
			retried = append(retried, results...)
		}
		// Keep the better of the two measurements per benchmark and
		// metric: the gate cares about the best the code can do, not the
		// worst the runner did.
		best := make(map[string]result, len(regressions))
		for _, r := range regressions {
			best[r.res.Name] = r.res
		}
		for _, b := range retried {
			prev, ok := best[b.Name]
			if !ok {
				continue
			}
			if b.NsPerOp < prev.NsPerOp {
				prev.NsPerOp = b.NsPerOp
			}
			if b.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = b.AllocsPerOp
			}
			best[b.Name] = prev
		}
		confirmed := make([]result, 0, len(best))
		seen := map[string]bool{}
		for _, r := range regressions {
			if !seen[r.res.Name] {
				seen[r.res.Name] = true
				confirmed = append(confirmed, best[r.res.Name])
			}
		}
		regressions = findRegressions(confirmed, baseBy, maxRatio, maxAllocRatio)
	}
	if len(regressions) > 0 {
		msg := fmt.Sprintf("%d measurement(s) regressed vs %s (limits: %.1fx ns/op, %.1fx allocs/op):",
			len(regressions), path, maxRatio, maxAllocRatio)
		for _, r := range regressions {
			msg += "\n  " + r.String()
		}
		return errors.New(msg)
	}
	fmt.Printf("baseline gate passed: within %.1fx ns/op and %.1fx allocs/op of %s\n", maxRatio, maxAllocRatio, path)
	return nil
}

// findRegressions compares fresh results against the baseline on ns/op and
// (when maxAllocRatio > 0) allocs/op.
func findRegressions(fresh []result, baseBy map[string]result, maxRatio, maxAllocRatio float64) []regression {
	var out []regression
	for _, b := range fresh {
		old, ok := baseBy[b.Name]
		if !ok {
			fmt.Printf("  (no baseline for %s; skipped by the gate)\n", b.Name)
			continue
		}
		if old.NsPerOp > 0 && b.NsPerOp/old.NsPerOp > maxRatio {
			out = append(out, regression{res: b, unit: "ns/op", fresh: b.NsPerOp, base: old.NsPerOp})
		}
		if maxAllocRatio > 0 && old.AllocsPerOp > 0 && b.AllocsPerOp/old.AllocsPerOp > maxAllocRatio {
			out = append(out, regression{res: b, unit: "allocs/op", fresh: b.AllocsPerOp, base: old.AllocsPerOp})
		}
	}
	return out
}

// runBench executes one `go test -bench` invocation and parses its output.
// cpuN > 0 adds -cpu N, running every benchmark at GOMAXPROCS=N.
func runBench(t trackedBench, benchtime string, cpuN int) ([]result, string, error) {
	args := []string{"test", "-run", "^$",
		"-bench", t.Bench, "-benchmem", "-benchtime", benchtime}
	if cpuN > 0 {
		args = append(args, "-cpu", strconv.Itoa(cpuN))
	}
	cmd := exec.Command("go", append(args, t.Pkg)...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	var results []result
	var cpu string
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := result{Name: m[1], Package: t.Pkg, Iterations: iters}
		parseMeasurements(m[3], &r)
		results = append(results, r)
	}
	if err := cmd.Wait(); err != nil {
		return nil, "", fmt.Errorf("go test -bench %q: %w", t.Bench, err)
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return results, cpu, nil
}

// parseMeasurements splits the "<value> <unit> <value> <unit> ..." tail of a
// benchmark line into the well-known fields plus custom metrics.
func parseMeasurements(tail string, r *result) {
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
}
