// Command scrutinizer verifies a document of statistical claims against a
// relational corpus and writes the verification report (Definition 4) to
// stdout. Without -corpus it generates and verifies a synthetic world, which
// is the quickest way to see the whole system run.
//
// Usage:
//
//	scrutinizer [-claims n] [-team n] [-batch n] [-ordering ilp|sequential|greedy] [-parallel n] [-seed n]
//	scrutinizer -corpus dir        # load relations from CSV files in dir
//
// With -corpus, every *.csv file in the directory becomes a relation (file
// name minus extension = relation name, first column = key attribute) and
// the tool prints corpus statistics; verifying user-supplied documents
// against a user corpus is done programmatically through the library (see
// README "Plugging in real fact checkers").
//
// With -interactive, a human answers the §5.1 question screens at the
// terminal through the mixed-initiative Oracle interface.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/table"
)

func main() {
	numClaims := flag.Int("claims", 120, "number of synthetic claims to verify")
	teamSize := flag.Int("team", 3, "number of crowd checkers")
	batch := flag.Int("batch", 25, "claims per batch between retrainings")
	orderingFlag := flag.String("ordering", "ilp", "claim ordering: ilp, sequential or greedy")
	parallel := flag.Int("parallel", 0, "claims verified concurrently per batch (0 = all CPUs, 1 = sequential)")
	seed := flag.Int64("seed", 7, "world seed")
	corpusDir := flag.String("corpus", "", "directory of CSV relations to inspect instead of the synthetic corpus")
	interactive := flag.Bool("interactive", false, "answer the question screens yourself at the terminal (mixed-initiative mode)")
	flag.Parse()

	if *interactive {
		if err := runInteractive(os.Stdin, os.Stdout, *numClaims, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *corpusDir != "" {
		if err := inspectCorpus(*corpusDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ordering := core.OrderILP
	switch *orderingFlag {
	case "sequential":
		ordering = core.OrderSequential
	case "greedy":
		ordering = core.OrderGreedy
	case "ilp":
	default:
		fmt.Fprintf(os.Stderr, "unknown ordering %q\n", *orderingFlag)
		os.Exit(2)
	}

	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = *numClaims
	cfg.Seed = *seed
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		fatal(err)
	}
	sys, err := scrutinizer.New(world.Corpus, world.Document, scrutinizer.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	team, err := sys.NewTeam(*teamSize)
	if err != nil {
		fatal(err)
	}
	res, err := sys.VerifyDocument(context.Background(), team, scrutinizer.VerifyOptions{
		BatchSize:       *batch,
		SectionReadCost: 60,
		Ordering:        ordering,
		Parallelism:     *parallel,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Printf("\nverdict accuracy vs injected errors: %.1f%%\n", res.Accuracy()*100)
}

func inspectCorpus(dir string) error {
	corpus, err := table.ReadCSVDir(dir)
	if err != nil {
		return err
	}
	s := corpus.Stats()
	fmt.Printf("corpus: %d relations, %d rows, %d cells\n", s.Relations, s.Rows, s.Cells)
	for _, name := range corpus.Names() {
		r, _ := corpus.Relation(name)
		fmt.Printf("  %-30s %4d rows × %4d attrs\n", name, r.NumRows(), r.NumAttrs())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
