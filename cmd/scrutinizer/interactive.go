package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/claims"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/planner"
)

// terminalOracle implements the mixed-initiative Oracle against a human at
// a terminal: each question screen is printed, the checker picks an option
// by number or types a value. The "(s)kip" answer leaves a screen
// unanswered.
type terminalOracle struct {
	in  *bufio.Scanner
	out io.Writer
}

func newTerminalOracle(in io.Reader, out io.Writer) *terminalOracle {
	return &terminalOracle{in: bufio.NewScanner(in), out: out}
}

// AnswerProperty implements core.Oracle.
func (t *terminalOracle) AnswerProperty(c *claims.Claim, kind core.PropertyKind, options []planner.Option) (string, float64) {
	fmt.Fprintf(t.out, "\nclaim %d: %q\n", c.ID, c.Text)
	fmt.Fprintf(t.out, "which %s does the verifying query use?\n", kind)
	for i, o := range options {
		fmt.Fprintf(t.out, "  [%d] %s (p=%.2f)\n", i+1, o.Value, o.Prob)
	}
	fmt.Fprintf(t.out, "number, free-text value, or s to skip > ")
	line, ok := t.read()
	if !ok || line == "s" {
		return "", 0
	}
	if n, err := strconv.Atoi(line); err == nil && n >= 1 && n <= len(options) {
		return options[n-1].Value, 0
	}
	return line, 0
}

// AnswerFinal implements core.Oracle.
func (t *terminalOracle) AnswerFinal(c *claims.Claim, candidates []string) (string, float64) {
	fmt.Fprintf(t.out, "\nclaim %d: %q\n", c.ID, c.Text)
	fmt.Fprintln(t.out, "candidate verifying queries:")
	for i, sql := range candidates {
		fmt.Fprintf(t.out, "  [%d] %s\n", i+1, sql)
	}
	fmt.Fprintf(t.out, "number, a full SQL statement, or s to skip > ")
	line, ok := t.read()
	if !ok || line == "s" {
		return "", 0
	}
	if n, err := strconv.Atoi(line); err == nil && n >= 1 && n <= len(candidates) {
		return candidates[n-1], 0
	}
	return line, 0
}

func (t *terminalOracle) read() (string, bool) {
	if !t.in.Scan() {
		return "", false
	}
	return strings.TrimSpace(t.in.Text()), true
}

// runInteractive verifies claims one by one with a human at the terminal.
func runInteractive(in io.Reader, out io.Writer, numClaims int, seed int64) error {
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 40
	cfg.Seed = seed
	world, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		return err
	}
	sys, err := scrutinizer.New(world.Corpus, world.Document, scrutinizer.Options{Seed: seed})
	if err != nil {
		return err
	}
	// Bootstrap from the world's annotations so screens show useful
	// options, as when previous checks exist.
	if err := sys.Train(world.Document.Claims); err != nil {
		return err
	}
	oracle := newTerminalOracle(in, out)
	if numClaims > len(world.Document.Claims) {
		numClaims = len(world.Document.Claims)
	}
	for _, c := range world.Document.Claims[:numClaims] {
		res, err := sys.VerifyClaimWith(context.Background(), c, oracle)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n=> verdict: %s", res.Verdict)
		if res.Query != nil {
			fmt.Fprintf(out, " (value %.6g)\n   query: %s", res.Value, res.Query.SQL())
		}
		if res.HasSuggestion {
			fmt.Fprintf(out, "\n   suggested correction: %.6g", res.Suggestion)
		}
		fmt.Fprintln(out)
	}
	return nil
}
