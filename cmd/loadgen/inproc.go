package main

// The in-process drive path: the same closed loop executed directly
// against a scrutinizer.Service in this process — no HTTP, no daemon.
// This is the apples-to-apples companion of the root package's
// concurrency benchmarks: it exercises the identical registry, snapshot
// and cache hot paths, so an improvement (or regression) in lock
// behaviour shows up here without network noise on top.

import (
	"context"
	"fmt"
	"time"

	"github.com/repro/scrutinizer"
)

type inprocRunner struct {
	cfg    config
	svc    *scrutinizer.Service
	mgr    *scrutinizer.SessionManager
	crowds *crowdCache
}

func newInprocRunner(cfg config) (*inprocRunner, error) {
	return &inprocRunner{
		cfg: cfg,
		svc: scrutinizer.NewService(),
		// Sessions are removed as soon as the loop completes them; the TTL
		// only reaps the leftovers of errored operations.
		mgr:    scrutinizer.NewSessionManager(time.Minute, 0),
		crowds: newCrowdCache(cfg),
	}, nil
}

func (ir *inprocRunner) setup(tenants []*tenant) error {
	created := make(map[string]bool)
	for _, t := range tenants {
		if !created[t.corpusID] {
			if _, err := ir.svc.AddCorpus(t.corpusID, t.world.Corpus); err != nil {
				return err
			}
			created[t.corpusID] = true
		}
		v, err := ir.svc.CreateVerifier(t.corpusID, t.world.Document, scrutinizer.Options{Seed: ir.cfg.seed})
		if err != nil {
			return err
		}
		t.verifierID = v.ID()
	}
	return nil
}

func (ir *inprocRunner) verifier(t *tenant) (*scrutinizer.Verifier, error) {
	// Per-op registry lookup on purpose: it is part of the hot path under
	// measurement, exactly as every HTTP request resolves its verifier.
	v, ok := ir.svc.Verifier(t.verifierID)
	if !ok {
		return nil, fmt.Errorf("verifier %s disappeared", t.verifierID)
	}
	return v, nil
}

func (ir *inprocRunner) verifyOptions() scrutinizer.VerifyOptions {
	return scrutinizer.VerifyOptions{
		BatchSize:   ir.cfg.batch,
		Parallelism: 1,
		Seed:        ir.cfg.seed,
	}
}

func (ir *inprocRunner) oneOp(worker int, t *tenant, mode string) (opResult, error) {
	if mode == "session" {
		return ir.sessionOp(worker, t)
	}
	return ir.batchOp(t)
}

func (ir *inprocRunner) batchOp(t *tenant) (opResult, error) {
	v, err := ir.verifier(t)
	if err != nil {
		return opResult{}, err
	}
	team, err := v.NewTeam(ir.cfg.team)
	if err != nil {
		return opResult{}, err
	}
	start := time.Now()
	run, err := v.StartRun(context.Background(), t.world.Document)
	if err != nil {
		return opResult{}, err
	}
	res, err := run.Verify(context.Background(), team, ir.verifyOptions())
	run.Close()
	if err != nil {
		return opResult{}, err
	}
	return opResult{
		claims:    len(res.Outcomes),
		latencies: []float64{float64(time.Since(start).Microseconds()) / 1000},
	}, nil
}

func (ir *inprocRunner) sessionOp(worker int, t *tenant) (opResult, error) {
	v, err := ir.verifier(t)
	if err != nil {
		return opResult{}, err
	}
	lc, err := ir.crowds.forWorker(worker, t)
	if err != nil {
		return opResult{}, err
	}
	sess, err := v.StartSession(context.Background(), ir.mgr, t.world.Document, scrutinizer.SessionOptions{Verify: ir.verifyOptions()})
	if err != nil {
		return opResult{}, err
	}
	defer ir.mgr.Remove(sess.ID())

	var res opResult
	queue := sess.Questions()
	emptyPolls := 0
	for {
		if len(queue) == 0 {
			p := sess.Progress()
			if p.Done {
				res.claims = p.Verified
				return res, nil
			}
			queue = sess.Questions()
			if len(queue) == 0 {
				if emptyPolls++; emptyPolls > 3 {
					return res, fmt.Errorf("session %s stalled: not done, no pending questions", sess.ID())
				}
				continue
			}
			emptyPolls = 0
		}
		q := queue[0]
		queue = queue[1:]
		ans, err := lc.answer(q)
		if err != nil {
			return res, err
		}
		start := time.Now()
		next, err := sess.Answer(context.Background(), ans)
		if err != nil {
			// Stale question (the claim already finished); drop it.
			continue
		}
		res.latencies = append(res.latencies, float64(time.Since(start).Microseconds())/1000)
		res.questions++
		if next != nil {
			queue = append(queue, *next)
		}
	}
}
