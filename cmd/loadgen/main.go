// Command loadgen is the closed-loop multi-tenant load harness: it drives
// a live scrutinizerd (-addr) or an in-process Service (default) with
// M corpora × V verifiers × C concurrent clients and reports aggregate
// claims/s, questions/s and p50/p95/p99 latency as LOAD_<date>.json.
//
// Closed loop means each of the C workers completes one full operation —
// a batch document verification, or an interactive session pumped from
// creation to Done — before starting the next, so concurrency is exactly
// C in-flight operations and throughput reflects what the service
// sustains, not what an open firehose piles up. Workers rotate round-robin
// over the tenants, so every (corpus, verifier) pair stays warm.
//
// Modes:
//
//   - batch (default): each operation is one POST /v1/verifiers/{id}/runs
//     with mode=batch (server-side simulated crowd; the report returns
//     inline). Latency samples are per-run wall times.
//   - session: each operation creates a mode=session run and answers every
//     question screen through the API using the same simulated-crowd logic
//     the server uses for batch runs (the loadgen knows the worlds' ground
//     truth because it generated them). Latency samples are per-answer
//     round trips — the figure an interactive checker experiences.
//
// With -baseline LOAD_x.json the run doubles as a regression gate,
// mirroring cmd/bench: the fresh claims/s must not fall below the baseline
// claims/s divided by -max-ratio, or the exit status is non-zero.
//
// Examples:
//
//	loadgen -duration 10s -corpora 2 -concurrency 8
//	scrutinizerd -addr :8080 -data-dir /tmp/d & loadgen -addr http://127.0.0.1:8080 -mode session
//	loadgen -baseline LOAD_2026-08-08.json -max-ratio 3
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/worldgen"
)

type config struct {
	addr        string
	mode        string
	corpora     int
	verifiers   int
	concurrency int
	duration    time.Duration
	claims      int
	sections    int
	team        int
	batch       int
	seed        int64
	out         string
	date        string
	baseline    string
	maxRatio    float64
	overload    bool
}

// loadReport is the LOAD_<date>.json document.
type loadReport struct {
	Date             string  `json:"date"`
	GoVersion        string  `json:"go_version"`
	GOOS             string  `json:"goos"`
	GOARCH           string  `json:"goarch"`
	CPU              string  `json:"cpu,omitempty"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	QueryCacheShards int     `json:"query_cache_shards"`
	Target           string  `json:"target"` // "inproc" or the daemon URL
	Mode             string  `json:"mode"`
	Corpora          int     `json:"corpora"`
	VerifiersPer     int     `json:"verifiers_per_corpus"`
	Concurrency      int     `json:"concurrency"`
	DurationS        float64 `json:"duration_s"`
	Runs             int     `json:"runs"`
	Claims           int     `json:"claims"`
	Questions        int     `json:"questions"`
	Errors           int     `json:"errors"`
	ClaimsPerS       float64 `json:"claims_per_s"`
	QuestionsPerS    float64 `json:"questions_per_s"`
	// LatencyKind says what the percentiles measure: "answer" round trips
	// (session mode) or whole-"run" wall times (batch mode).
	LatencyKind string  `json:"latency_kind"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// Guard accounting, recorded in every mode: requests the daemon shed,
	// split by status code (429 rate/quota rejections vs 503 load
	// shedding), plus sessions deliberately walked away from mid-pump
	// (overload only). A shed request is the protection working, not an
	// error; Other5xx is what would indicate the daemon buckling.
	Overload  bool `json:"overload,omitempty"`
	Shed429   int  `json:"shed_429,omitempty"`
	Shed503   int  `json:"shed_503,omitempty"`
	Other5xx  int  `json:"other_5xx,omitempty"`
	Abandoned int  `json:"abandoned_sessions,omitempty"`
}

// tenant is one (corpus, verifier) pair under load, with the generated
// world it was trained from — the ground truth the simulated crowd answers
// with in session mode.
type tenant struct {
	corpusID   string
	verifierID string
	world      *worldgen.World
	docJSON    []byte
}

// opResult is what one closed-loop operation contributes.
type opResult struct {
	claims    int
	questions int
	latencies []float64 // milliseconds; per-answer (session) or per-run (batch)
	// Guard outcomes (every mode): shed counts rejections the daemon's
	// guards issued, split by status code, other5xx counts genuine server
	// failures, abandoned marks a session deliberately left un-deleted
	// mid-pump (overload mode only).
	shed429   int
	shed503   int
	other5xx  int
	abandoned int
}

// runner abstracts the two drive paths (HTTP daemon, in-process Service).
type runner interface {
	// setup registers every tenant's corpus and verifier with the target.
	setup(tenants []*tenant) error
	// oneOp executes one closed-loop operation for the tenant. worker is
	// the stable worker index (used to key per-worker crowd state).
	oneOp(worker int, t *tenant, mode string) (opResult, error)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "scrutinizerd base URL (e.g. http://127.0.0.1:8080); empty drives an in-process Service")
	flag.StringVar(&cfg.mode, "mode", "batch", "operation mode: batch or session")
	flag.IntVar(&cfg.corpora, "corpora", 2, "number of corpora (M)")
	flag.IntVar(&cfg.verifiers, "verifiers", 1, "verifiers per corpus (V)")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "concurrent closed-loop clients (C)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "load duration (workers finish their in-flight op after it)")
	flag.IntVar(&cfg.claims, "claims", 40, "claims per generated world")
	flag.IntVar(&cfg.sections, "sections", 5, "sections per generated world")
	flag.IntVar(&cfg.team, "team", 3, "crowd team size per operation")
	flag.IntVar(&cfg.batch, "batch", 100, "verification batch size")
	flag.Int64Var(&cfg.seed, "seed", 7, "base world seed (corpus i uses seed+i)")
	flag.StringVar(&cfg.out, "out", "", "output path (default LOAD_<date>.json)")
	flag.StringVar(&cfg.date, "date", time.Now().Format("2006-01-02"), "date stamp for the output file")
	flag.StringVar(&cfg.baseline, "baseline", "", "LOAD_*.json to gate against; exit non-zero when claims/s regresses")
	flag.Float64Var(&cfg.maxRatio, "max-ratio", 2.0, "fail when baseline claims/s exceeds fresh claims/s by this factor (with -baseline)")
	flag.BoolVar(&cfg.overload, "overload", false, "hostile mode: never back off on 429/503 (count them as shed), abandon half the sessions mid-pump without deleting them; fails unless the daemon stays live with no non-shed 5xx")
	flag.Parse()

	if cfg.mode != "batch" && cfg.mode != "session" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown mode %q (batch or session)\n", cfg.mode)
		os.Exit(2)
	}
	if cfg.overload && cfg.addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -overload needs a live daemon (-addr); the guards under test live in scrutinizerd")
		os.Exit(2)
	}
	if cfg.out == "" {
		cfg.out = "LOAD_" + cfg.date + ".json"
	}

	tenants, err := buildTenants(cfg)
	if err != nil {
		fatal(err)
	}
	var r runner
	target := "inproc"
	if cfg.addr != "" {
		target = cfg.addr
		r = &httpRunner{base: strings.TrimRight(cfg.addr, "/"), cfg: cfg,
			client: &http.Client{Timeout: 5 * time.Minute}, crowds: newCrowdCache(cfg)}
	} else {
		ir, err := newInprocRunner(cfg)
		if err != nil {
			fatal(err)
		}
		r = ir
	}
	fmt.Fprintf(os.Stderr, "loadgen: setting up %d corpora x %d verifiers on %s\n",
		cfg.corpora, cfg.verifiers, target)
	if err := r.setup(tenants); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "loadgen: %s mode, C=%d closed-loop clients for %s\n",
		cfg.mode, cfg.concurrency, cfg.duration)
	rep := drive(cfg, r, tenants)
	rep.Target = target
	rep.CPU = cpuModel()

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(cfg.out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d runs, %.0f claims/s, %.0f questions/s, p50/p95/p99 = %.1f/%.1f/%.1f ms (%s) -> %s\n",
		rep.Runs, rep.ClaimsPerS, rep.QuestionsPerS, rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.LatencyKind, cfg.out)
	if rep.Shed429+rep.Shed503 > 0 && !cfg.overload {
		// Guards fired during a non-hostile run: report the split so a
		// throttled result is never mistaken for a clean throughput number.
		fmt.Fprintf(os.Stderr, "loadgen: rejected by guards: %d rate/quota (429), %d load-shed (503)\n",
			rep.Shed429, rep.Shed503)
	}

	if cfg.overload {
		// Overload pass criteria: the daemon survived (liveness green), it
		// actually shed something (the limits were exercised), and nothing
		// failed with a non-shed 5xx — a 500 storm under load is a bug the
		// protection layer exists to prevent.
		fmt.Fprintf(os.Stderr, "loadgen: overload: %d shed as 429, %d shed as 503, %d abandoned sessions, %d other 5xx\n",
			rep.Shed429, rep.Shed503, rep.Abandoned, rep.Other5xx)
		if rep.Other5xx > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d non-shed 5xx responses under overload\n", rep.Other5xx)
			os.Exit(1)
		}
		if rep.Shed429+rep.Shed503 == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL: overload run shed nothing (limits not exercised; raise -concurrency or lower the daemon's quotas)")
			os.Exit(1)
		}
		if err := checkAlive(cfg.addr); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: daemon liveness after overload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: overload gate passed (daemon live, shedding clean)")
		return
	}
	if rep.Runs == 0 || rep.Claims == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: no operations completed")
		os.Exit(1)
	}
	if cfg.baseline != "" {
		if err := gate(cfg, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: baseline gate passed")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}

// checkAlive asserts the daemon's liveness probe still answers 200 — the
// post-overload invariant: shedding protected the process, not killed it.
func checkAlive(addr string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimRight(addr, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz returned %d", resp.StatusCode)
	}
	return nil
}

// buildTenants generates the worlds and serializes each training document
// once (the HTTP driver re-sends it per run).
func buildTenants(cfg config) ([]*tenant, error) {
	var tenants []*tenant
	for m := 0; m < cfg.corpora; m++ {
		wcfg := worldgen.SmallScale()
		wcfg.NumClaims = cfg.claims
		wcfg.NumSections = cfg.sections
		wcfg.Seed = cfg.seed + int64(m)
		w, err := worldgen.Generate(wcfg)
		if err != nil {
			return nil, fmt.Errorf("generating world %d: %w", m, err)
		}
		var doc bytes.Buffer
		if err := w.Document.WriteJSON(&doc); err != nil {
			return nil, err
		}
		for v := 0; v < cfg.verifiers; v++ {
			tenants = append(tenants, &tenant{
				// Seed-qualified so reruns against a durable daemon with a
				// different -seed never bind to a stale corpus.
				corpusID:   fmt.Sprintf("load-s%d-c%d", cfg.seed, m),
				verifierID: "", // assigned during setup
				world:      w,
				docJSON:    doc.Bytes(),
			})
		}
	}
	return tenants, nil
}

// drive runs the closed loop and aggregates the report.
func drive(cfg config, r runner, tenants []*tenant) loadReport {
	type workerTotals struct {
		res  opResult
		runs int
		errs int
	}
	totals := make([]workerTotals, cfg.concurrency)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tt := &totals[w]
			for op := 0; time.Now().Before(deadline); op++ {
				t := tenants[(w+op)%len(tenants)]
				res, err := r.oneOp(w, t, cfg.mode)
				tt.res.shed429 += res.shed429
				tt.res.shed503 += res.shed503
				tt.res.other5xx += res.other5xx
				tt.res.abandoned += res.abandoned
				if err != nil {
					tt.errs++
					// Under deliberate overload a wall of shed errors is the
					// expected outcome, not news worth a line each.
					if !cfg.overload {
						fmt.Fprintf(os.Stderr, "loadgen: worker %d: %v\n", w, err)
					}
					continue
				}
				if res.shed429+res.shed503 > 0 && res.claims == 0 && res.questions == 0 {
					// The whole operation was shed at admission: not a run,
					// not an error — the guard doing its job.
					continue
				}
				tt.runs++
				tt.res.claims += res.claims
				tt.res.questions += res.questions
				tt.res.latencies = append(tt.res.latencies, res.latencies...)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := loadReport{
		Date:             cfg.date,
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		QueryCacheShards: core.QueryCacheShards,
		Mode:             cfg.mode,
		Corpora:          cfg.corpora,
		VerifiersPer:     cfg.verifiers,
		Concurrency:      cfg.concurrency,
		DurationS:        elapsed,
		LatencyKind:      "run",
		Overload:         cfg.overload,
	}
	if cfg.mode == "session" {
		rep.LatencyKind = "answer"
	}
	var lats []float64
	for i := range totals {
		rep.Runs += totals[i].runs
		rep.Claims += totals[i].res.claims
		rep.Questions += totals[i].res.questions
		rep.Errors += totals[i].errs
		rep.Shed429 += totals[i].res.shed429
		rep.Shed503 += totals[i].res.shed503
		rep.Other5xx += totals[i].res.other5xx
		rep.Abandoned += totals[i].res.abandoned
		lats = append(lats, totals[i].res.latencies...)
	}
	if elapsed > 0 {
		rep.ClaimsPerS = float64(rep.Claims) / elapsed
		rep.QuestionsPerS = float64(rep.Questions) / elapsed
	}
	sort.Float64s(lats)
	rep.P50Ms = percentile(lats, 0.50)
	rep.P95Ms = percentile(lats, 0.95)
	rep.P99Ms = percentile(lats, 0.99)
	return rep
}

// percentile reads the p-quantile from sorted samples (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// gate compares fresh claims/s against a baseline LOAD_*.json, mirroring
// cmd/bench's ratio gate: regressions beyond max-ratio fail, improvements
// always pass.
func gate(cfg config, fresh *loadReport) error {
	raw, err := os.ReadFile(cfg.baseline)
	if err != nil {
		return err
	}
	var base loadReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", cfg.baseline, err)
	}
	if base.ClaimsPerS <= 0 {
		return fmt.Errorf("baseline %s has no claims/s", cfg.baseline)
	}
	if fresh.ClaimsPerS*cfg.maxRatio < base.ClaimsPerS {
		return fmt.Errorf("claims/s regressed: %.0f -> %.0f (more than %.2fx below baseline %s)",
			base.ClaimsPerS, fresh.ClaimsPerS, cfg.maxRatio, cfg.baseline)
	}
	return nil
}

// cpuModel reads the processor model for the report metadata (best effort;
// Linux only).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// localCrowd answers session question screens from a world's ground truth,
// exactly like the in-process simulated crowd: per-claim team views,
// truth labels from the document, truth SQL from an identically built
// engine over the same corpus. One localCrowd per (worker, tenant) —
// teams carry mutable RNG state and must not be shared across goroutines.
type localCrowd struct {
	engine  *core.Engine
	team    *scrutinizer.Team
	byID    map[int]*scrutinizer.Claim
	oracles map[int]core.Oracle
}

func newLocalCrowd(w *worldgen.World, seed int64, teamSize int) (*localCrowd, error) {
	sys, err := scrutinizer.New(w.Corpus, w.Document, scrutinizer.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	team, err := sys.NewTeam(teamSize)
	if err != nil {
		return nil, err
	}
	lc := &localCrowd{
		engine:  sys.Engine(),
		team:    team,
		byID:    make(map[int]*scrutinizer.Claim, len(w.Document.Claims)),
		oracles: make(map[int]core.Oracle),
	}
	for _, c := range w.Document.Claims {
		lc.byID[c.ID] = c
	}
	return lc, nil
}

func (lc *localCrowd) answer(q scrutinizer.SessionQuestion) (scrutinizer.SessionAnswer, error) {
	oracle := lc.oracles[q.ClaimID]
	if oracle == nil {
		var err error
		oracle, err = lc.engine.NewTeamOracle(lc.team.ForClaim(q.ClaimID))
		if err != nil {
			return scrutinizer.SessionAnswer{}, err
		}
		lc.oracles[q.ClaimID] = oracle
	}
	claim := lc.byID[q.ClaimID]
	if claim == nil {
		return scrutinizer.SessionAnswer{}, fmt.Errorf("question for unknown claim %d", q.ClaimID)
	}
	var value string
	var secs float64
	if q.Screen == "final" {
		value, secs = oracle.AnswerFinal(claim, q.Candidates)
	} else {
		var kind core.PropertyKind
		switch q.Screen {
		case "relation":
			kind = core.PropRelation
		case "key":
			kind = core.PropKey
		case "attribute":
			kind = core.PropAttr
		case "formula":
			kind = core.PropFormula
		default:
			return scrutinizer.SessionAnswer{}, fmt.Errorf("unknown screen %q", q.Screen)
		}
		opts := make([]planner.Option, len(q.Options))
		for i, o := range q.Options {
			opts[i] = planner.Option{Value: o.Value, Prob: o.Prob}
		}
		value, secs = oracle.AnswerProperty(claim, kind, opts)
	}
	return scrutinizer.SessionAnswer{QuestionID: q.ID, ClaimID: q.ClaimID, Value: value, Seconds: secs}, nil
}

// crowdCache hands each (worker, tenant) pair its own localCrowd, built
// lazily — workers own their entry, so no lock is needed beyond the map's.
type crowdCache struct {
	mu     sync.Mutex
	cfg    config
	crowds map[string]*localCrowd
}

func newCrowdCache(cfg config) *crowdCache {
	return &crowdCache{cfg: cfg, crowds: make(map[string]*localCrowd)}
}

func (cc *crowdCache) forWorker(worker int, t *tenant) (*localCrowd, error) {
	key := fmt.Sprintf("%d/%s/%s", worker, t.corpusID, t.verifierID)
	cc.mu.Lock()
	lc := cc.crowds[key]
	cc.mu.Unlock()
	if lc != nil {
		return lc, nil
	}
	lc, err := newLocalCrowd(t.world, cc.cfg.seed+int64(worker), cc.cfg.team)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	cc.crowds[key] = lc
	cc.mu.Unlock()
	return lc, nil
}
