package main

// The HTTP drive path: loadgen as a real /v1 client of a live scrutinizerd.
// Setup registers each tenant's corpus (relations inlined as CSV) and
// trains its verifier; operations then go through exactly the routes a
// production checker frontend would use, so the measured latency includes
// the daemon's full request path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/repro/scrutinizer"
)

type httpRunner struct {
	base   string
	cfg    config
	client *http.Client
	crowds *crowdCache
	// abandons alternates which overload-mode sessions are walked away
	// from mid-pump (every other one, across all workers).
	abandons atomic.Int64
}

// relationJSON is one inline CSV relation of the corpus-create body.
type relationJSON struct {
	Name string `json:"name"`
	CSV  string `json:"csv"`
}

// runBody is the POST /v1/verifiers/{id}/runs envelope.
type runBody struct {
	Document    json.RawMessage `json:"document"`
	Team        int             `json:"team,omitempty"`
	Batch       int             `json:"batch,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
	Seed        int64           `json:"seed,omitempty"`
	Mode        string          `json:"mode"`
}

func (hr *httpRunner) setup(tenants []*tenant) error {
	created := make(map[string]bool)
	for _, t := range tenants {
		if !created[t.corpusID] {
			var rels []relationJSON
			for _, name := range t.world.Corpus.Names() {
				rel, err := t.world.Corpus.Relation(name)
				if err != nil {
					return err
				}
				var csv bytes.Buffer
				if err := rel.WriteCSV(&csv); err != nil {
					return err
				}
				rels = append(rels, relationJSON{Name: name, CSV: csv.String()})
			}
			body, err := json.Marshal(map[string]any{"id": t.corpusID, "relations": rels})
			if err != nil {
				return err
			}
			// 409 means a previous loadgen run against this (durable) daemon
			// already registered the corpus; worldgen is deterministic in
			// the seed baked into the ID, so the existing one is identical.
			if status, err := hr.post("/v1/corpora", body, nil); err != nil && status != http.StatusConflict {
				return fmt.Errorf("creating corpus %s: %w", t.corpusID, err)
			}
			created[t.corpusID] = true
		}
		body, err := json.Marshal(map[string]any{
			"training": json.RawMessage(t.docJSON),
			"seed":     hr.cfg.seed,
		})
		if err != nil {
			return err
		}
		var vr struct {
			ID string `json:"id"`
		}
		if _, err := hr.post("/v1/corpora/"+t.corpusID+"/verifiers", body, &vr); err != nil {
			return fmt.Errorf("training verifier on %s: %w", t.corpusID, err)
		}
		t.verifierID = vr.ID
	}
	return nil
}

func (hr *httpRunner) oneOp(worker int, t *tenant, mode string) (opResult, error) {
	if mode == "session" {
		return hr.sessionOp(worker, t)
	}
	return hr.batchOp(t)
}

// classifyShed folds a rejection status into the result's per-status
// accounting: 429s (rate limit / run quota) and 503s (admission gate /
// not-ready) are counted separately in every mode, so a run that was
// quietly throttled shows up in the summary. It reports whether the
// status was a shed (429/503) — in overload mode those are outcomes, not
// errors, and the worker immediately retries (no backoff: that is the
// point of a hostile tenant); outside overload the caller still
// propagates the error after the count is recorded.
func classifyShed(res *opResult, status int) bool {
	switch {
	case status == http.StatusTooManyRequests:
		res.shed429++
		return true
	case status == http.StatusServiceUnavailable:
		res.shed503++
		return true
	case status >= 500:
		res.other5xx++
	}
	return false
}

// batchOp runs one mode=batch verification; the simulated crowd answers
// server-side and the report comes back inline. One latency sample: the
// whole request.
func (hr *httpRunner) batchOp(t *tenant) (opResult, error) {
	body, err := json.Marshal(runBody{
		Document:    t.docJSON,
		Team:        hr.cfg.team,
		Batch:       hr.cfg.batch,
		Parallelism: 1,
		Seed:        hr.cfg.seed,
		Mode:        "batch",
	})
	if err != nil {
		return opResult{}, err
	}
	var resp struct {
		Claims int `json:"claims"`
	}
	var res opResult
	start := time.Now()
	if status, err := hr.post("/v1/verifiers/"+t.verifierID+"/runs", body, &resp); err != nil {
		if classifyShed(&res, status) && hr.cfg.overload {
			return res, nil
		}
		return res, err
	}
	res.claims = resp.Claims
	res.latencies = []float64{float64(time.Since(start).Microseconds()) / 1000}
	return res, nil
}

// sessionOp creates one mode=session run and pumps it to completion:
// every question screen is answered by the local simulated crowd through
// POST answers, one answer per request so each sample is one checker
// round trip. Follow-up questions ride back on the answer response; the
// questions endpoint is polled only across batch boundaries.
func (hr *httpRunner) sessionOp(worker int, t *tenant) (opResult, error) {
	lc, err := hr.crowds.forWorker(worker, t)
	if err != nil {
		return opResult{}, err
	}
	body, err := json.Marshal(runBody{
		Document:    t.docJSON,
		Batch:       hr.cfg.batch,
		Parallelism: 1,
		Seed:        hr.cfg.seed,
		Mode:        "session",
	})
	if err != nil {
		return opResult{}, err
	}
	var res opResult
	var sess struct {
		ID        string                        `json:"id"`
		Questions []scrutinizer.SessionQuestion `json:"questions"`
		Progress  scrutinizer.SessionProgress   `json:"progress"`
	}
	if status, err := hr.post("/v1/verifiers/"+t.verifierID+"/runs", body, &sess); err != nil {
		if classifyShed(&res, status) && hr.cfg.overload {
			return res, nil
		}
		return res, err
	}
	// Overload mode kills every other client mid-session: answer part of
	// the document, then vanish without the DELETE — the abandoned session
	// keeps holding the tenant's registry slot until the TTL sweep, which
	// is exactly the pressure a crashed or hostile client applies.
	abandon := hr.cfg.overload && hr.abandons.Add(1)%2 == 0
	abandonAfter := len(sess.Questions)/2 + 1
	if !abandon {
		defer func() {
			req, _ := http.NewRequest(http.MethodDelete, hr.base+"/v1/runs/"+sess.ID, nil)
			if resp, err := hr.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	queue := sess.Questions
	done := sess.Progress.Done
	verified := sess.Progress.Verified
	emptyPolls := 0
	for !done {
		if abandon && res.questions >= abandonAfter {
			res.abandoned++
			return res, nil
		}
		if len(queue) == 0 {
			var qs struct {
				Questions []scrutinizer.SessionQuestion `json:"questions"`
				Done      bool                          `json:"done"`
			}
			if _, err := hr.get("/v1/runs/"+sess.ID+"/questions", &qs); err != nil {
				return res, err
			}
			queue, done = qs.Questions, qs.Done
			if done {
				break
			}
			if len(queue) == 0 {
				if emptyPolls++; emptyPolls > 3 {
					return res, fmt.Errorf("session %s stalled: not done, no pending questions", sess.ID)
				}
				continue
			}
			emptyPolls = 0
		}
		q := queue[0]
		queue = queue[1:]
		ans, err := lc.answer(q)
		if err != nil {
			return res, err
		}
		ansBody, err := json.Marshal(ans)
		if err != nil {
			return res, err
		}
		var ar struct {
			Accepted  int                           `json:"accepted"`
			Questions []scrutinizer.SessionQuestion `json:"questions"`
			Progress  scrutinizer.SessionProgress   `json:"progress"`
		}
		start := time.Now()
		status, err := hr.post("/v1/runs/"+sess.ID+"/answers", ansBody, &ar)
		if status == http.StatusConflict {
			// The question went stale (its claim already finished); drop it
			// and keep pumping.
			continue
		}
		if err != nil {
			if classifyShed(&res, status) && hr.cfg.overload {
				// Rate-limited mid-session: give up on this one (the defer
				// deletes it unless we are in an abandon run) and move on —
				// a hostile client would just hammer the next request.
				return res, nil
			}
			return res, err
		}
		res.latencies = append(res.latencies, float64(time.Since(start).Microseconds())/1000)
		res.questions += ar.Accepted
		queue = append(queue, ar.Questions...)
		done = ar.Progress.Done
		verified = ar.Progress.Verified
	}
	res.claims = verified
	return res, nil
}

// post sends a JSON body and decodes the JSON response into out (when
// non-nil). Non-2xx statuses come back as (status, error) — 409 is the
// one status oneOp handles rather than fails on.
func (hr *httpRunner) post(path string, body []byte, out any) (int, error) {
	resp, err := hr.client.Post(hr.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	return decodeResponse(resp, out)
}

func (hr *httpRunner) get(path string, out any) (int, error) {
	resp, err := hr.client.Get(hr.base + path)
	if err != nil {
		return 0, err
	}
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) (int, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg := string(raw)
		if len(msg) > 200 {
			msg = msg[:200] + "..."
		}
		return resp.StatusCode, fmt.Errorf("%s %s: %s", resp.Request.Method, resp.Request.URL.Path, msg)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s: %w", resp.Request.URL.Path, err)
		}
	}
	return resp.StatusCode, nil
}
