// Command simulate runs the §6.2 report-scale simulation: Manual vs
// Sequential vs Scrutinizer over a full synthetic report, printing the
// Table 2 summary and the accumulated-time / accuracy series.
//
// Usage:
//
//	simulate [-scale small|paper] [-batch n] [-team n] [-seed n] [-parallel n] [-systems manual,sequential,scrutinizer]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/repro/scrutinizer/internal/sim"
	"github.com/repro/scrutinizer/internal/worldgen"
)

func main() {
	scale := flag.String("scale", "small", "world scale: small or paper")
	batch := flag.Int("batch", 0, "batch size (0 = scale default)")
	team := flag.Int("team", 3, "team size")
	seed := flag.Int64("seed", 2018, "world seed")
	parallel := flag.Int("parallel", 0, "claims verified concurrently per batch (0 = all CPUs, 1 = sequential)")
	systemsFlag := flag.String("systems", "", "comma-separated subset of manual,sequential,scrutinizer")
	flag.Parse()

	cfg := sim.DefaultSimulationConfig()
	if *scale == "small" {
		cfg.World = worldgen.SmallScale()
		cfg.World.NumClaims = 200
		cfg.BatchSize = 25
	}
	cfg.World.Seed = *seed
	cfg.TeamSize = *team
	cfg.Parallelism = *parallel
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	if *systemsFlag != "" {
		for _, name := range strings.Split(*systemsFlag, ",") {
			switch strings.TrimSpace(name) {
			case "manual":
				cfg.Systems = append(cfg.Systems, sim.SystemManual)
			case "sequential":
				cfg.Systems = append(cfg.Systems, sim.SystemSequential)
			case "scrutinizer":
				cfg.Systems = append(cfg.Systems, sim.SystemScrutinizer)
			default:
				fmt.Fprintf(os.Stderr, "unknown system %q\n", name)
				os.Exit(2)
			}
		}
	}

	res, err := sim.RunSimulation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("simulated %d claims, team of %d, batch %d\n\n", res.Claims, cfg.TeamSize, cfg.BatchSize)
	fmt.Printf("%-14s %8s %9s %8s %8s %12s %10s\n",
		"System", "Weeks", "%Savings", "AvgAcc", "MaxAcc", "Comp(mins)", "ResultAcc")
	for _, s := range res.Systems {
		fmt.Printf("%-14s %8.2f %8.0f%% %8.2f %8.2f %12.1f %9.1f%%\n",
			s.System, s.Weeks, s.Savings*100, s.AvgAccuracy, s.MaxAccuracy, s.ComputeMinutes, s.ResultAccuracy*100)
	}

	fmt.Println("\naccumulated weeks by verified claims:")
	for _, s := range res.Systems {
		fmt.Printf("%-14s", s.System)
		for _, p := range s.Series {
			fmt.Printf(" %d:%.2f", p.VerifiedClaims, p.Weeks)
		}
		fmt.Println()
	}
}
