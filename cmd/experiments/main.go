// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic world. Each experiment prints the same
// rows/series the paper reports, plus the measured values, so the shape can
// be compared directly (see EXPERIMENTS.md).
//
// Usage:
//
//	experiments -exp all|table1|table2|table3|fig5|fig6|fig7|fig8|fig9|fig10 [-scale small|paper]
//
// The small scale runs in seconds; the paper scale (1539 claims, 1785
// relations) takes several minutes, most of it classifier retraining — the
// paper reports 13 minutes for the same step.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/repro/scrutinizer/internal/aggcheck"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/planner"
	"github.com/repro/scrutinizer/internal/report"
	"github.com/repro/scrutinizer/internal/sim"
	"github.com/repro/scrutinizer/internal/stats"
	"github.com/repro/scrutinizer/internal/worldgen"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig5-fig10, ablations")
	scale := flag.String("scale", "small", "world scale: small or paper")
	seed := flag.Int64("seed", 2018, "world seed")
	parallel := flag.Int("parallel", 0, "claims verified concurrently per batch (0 = all CPUs, 1 = sequential)")
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.NumCPU()
	}

	worldCfg := worldgen.SmallScale()
	if *scale == "paper" {
		worldCfg = worldgen.PaperScale()
	}
	worldCfg.Seed = *seed

	runner := &runner{worldCfg: worldCfg, scale: *scale, parallel: *parallel}
	experiments := map[string]func() error{
		"table1":    runner.table1,
		"table2":    runner.table2,
		"table3":    runner.table3,
		"fig5":      runner.fig5,
		"fig6":      runner.fig6,
		"fig7":      runner.fig7,
		"fig8":      runner.fig8,
		"fig9":      runner.fig9,
		"fig10":     runner.fig10,
		"ablations": runner.ablations,
	}
	order := []string{"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}

	var toRun []string
	if *exp == "all" {
		toRun = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, name)
		}
	}
	for _, name := range toRun {
		fmt.Printf("=== %s ===\n", name)
		if err := experiments[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

type runner struct {
	worldCfg worldgen.Config
	scale    string
	parallel int

	simResult *sim.SimulationResult // cached across fig7/8/9/table2
}

// table1 prints the percentiles of property value frequencies.
func (r *runner) table1() error {
	w, err := worldgen.Generate(r.worldCfg)
	if err != nil {
		return err
	}
	freq := func(extract func(worldgen.CandidateLists) []string) []float64 {
		counts := map[string]int{}
		for _, cand := range w.Candidates {
			for _, v := range extract(cand) {
				counts[v]++
			}
		}
		out := make([]float64, 0, len(counts))
		for _, n := range counts {
			out = append(out, float64(n))
		}
		return out
	}
	rows := []struct {
		name    string
		extract func(worldgen.CandidateLists) []string
		paper   [5]float64
	}{
		{"Relation", func(c worldgen.CandidateLists) []string { return c.Relations }, [5]float64{2, 4, 10, 199, 532}},
		{"Primary Key", func(c worldgen.CandidateLists) []string { return c.Keys }, [5]float64{2, 2, 4, 39, 107}},
		{"Attribute", func(c worldgen.CandidateLists) []string { return c.Attrs }, [5]float64{1, 2, 7, 127, 1400}},
		{"Formula", func(c worldgen.CandidateLists) []string { return c.Formulas }, [5]float64{1, 1, 1, 8, 55}},
	}
	levels := []float64{10, 25, 50, 95, 99}
	fmt.Printf("%-12s %8s %8s %8s %8s %8s   (paper values in parens)\n",
		"Percentiles", "10%", "25%", "50%", "95%", "99%")
	for _, row := range rows {
		fs := freq(row.extract)
		ps := stats.Percentiles(fs, levels)
		fmt.Printf("%-12s", row.name)
		for i, p := range ps {
			fmt.Printf(" %4.0f(%3.0f)", p, row.paper[i])
		}
		fmt.Println()
	}
	distinct := func(extract func(worldgen.CandidateLists) []string) int {
		set := map[string]bool{}
		for _, cand := range w.Candidates {
			for _, v := range extract(cand) {
				set[v] = true
			}
		}
		return len(set)
	}
	fmt.Printf("distinct values: relations=%d (paper 1791) keys=%d (830) attrs=%d (87) formulas=%d (413)\n",
		distinct(rows[0].extract), distinct(rows[1].extract), distinct(rows[2].extract), distinct(rows[3].extract))
	return nil
}

func (r *runner) simulation() (*sim.SimulationResult, error) {
	if r.simResult != nil {
		return r.simResult, nil
	}
	cfg := sim.DefaultSimulationConfig()
	cfg.World = r.worldCfg
	cfg.Parallelism = r.parallel
	if r.scale == "small" {
		cfg.BatchSize = 20
	}
	res, err := sim.RunSimulation(cfg)
	if err != nil {
		return nil, err
	}
	r.simResult = res
	return res, nil
}

// table2 prints the simulation summary.
func (r *runner) table2() error {
	res, err := r.simulation()
	if err != nil {
		return err
	}
	paper := map[sim.System][2]float64{ // weeks, savings
		sim.SystemManual:      {4.1, 0},
		sim.SystemSequential:  {2.1, 0.49},
		sim.SystemScrutinizer: {1.7, 0.59},
	}
	fmt.Printf("%-14s %10s %10s %10s %10s %12s\n",
		"", "Weeks", "%Savings", "AvgAcc", "MaxAcc", "Comp(mins)")
	for _, s := range res.Systems {
		p := paper[s.System]
		fmt.Printf("%-14s %5.2f(%3.1f) %5.0f%%(%2.0f%%) %9.2f %9.2f %11.1f\n",
			s.System, s.Weeks, p[0], s.Savings*100, p[1]*100, s.AvgAccuracy, s.MaxAccuracy, s.ComputeMinutes)
	}
	fmt.Println("(paper values in parens; Manual has no classifier accuracy)")
	return nil
}

func (r *runner) table3() error {
	if err := report.WriteTable3(os.Stdout); err != nil {
		return err
	}
	// Quantitative addendum: the AggChecker-style baseline (explicit
	// claims, fixed 9-op library, single user) against the same document.
	w, err := worldgen.Generate(r.worldCfg)
	if err != nil {
		return err
	}
	checker, err := aggcheck.New(w.Corpus, aggcheck.DefaultConfig())
	if err != nil {
		return err
	}
	cov := checker.CheckDocument(w.Document)
	fmt.Printf("\nAggChecker-style baseline on the same document (%d claims):\n", cov.Total)
	fmt.Printf("  unsupported (general/parameterless): %d (%.0f%%)\n",
		cov.Unsupported, 100*float64(cov.Unsupported)/float64(cov.Total))
	fmt.Printf("  attempted: %d, matched: %d, accuracy on attempted: %.0f%%\n",
		cov.Attempted(), cov.Matched, cov.Accuracy()*100)
	fmt.Println("  (Scrutinizer engages every claim; see table2/fig5 for its accuracy)")
	return nil
}

// fig5 prints the user-study bars.
func (r *runner) fig5() error {
	cfg := sim.DefaultStudyConfig()
	if r.scale == "paper" {
		cfg.World = r.worldCfg
		cfg.World.NumClaims = 600
		cfg.World.NumFormulas = 60
	}
	res, err := sim.RunUserStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Claims verified in 20 minutes per checker (paper: M≈7-13, S≈19-26):")
	for _, c := range res.Checkers {
		fmt.Printf("  %-3s correct=%-3d incorrect=%-2d skipped=%-2d (%.0fs used)\n",
			c.Name, c.Correct, c.Incorrect, c.Skipped, c.Seconds)
	}
	fmt.Printf("manual avg=%.1f system avg=%.1f (paper: 7 vs 23)\n", res.ManualAvg, res.SystemAvg)
	fmt.Printf("3-checker majority accuracy: %.0f%% (paper: 100%%)\n", res.MajorityAccuracy*100)
	return nil
}

// fig6 prints verification time vs claim complexity.
func (r *runner) fig6() error {
	cfg := sim.DefaultStudyConfig()
	res, err := sim.RunUserStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Mean verification time (s) by claim complexity (paper: System ≈ half of Manual):")
	fmt.Printf("%-11s %12s %12s\n", "Complexity", "Manual", "System")
	for _, p := range res.Complexity {
		m, s := "-", "-"
		if p.ManualCount > 0 {
			m = fmt.Sprintf("%.0f±%.0f", p.ManualMean, p.ManualStd)
		}
		if p.SystemCount > 0 {
			s = fmt.Sprintf("%.0f±%.0f", p.SystemMean, p.SystemStd)
		}
		fmt.Printf("%-11d %12s %12s\n", p.Complexity, m, s)
	}
	return nil
}

// fig7 prints accumulated verification time.
func (r *runner) fig7() error {
	res, err := r.simulation()
	if err != nil {
		return err
	}
	fmt.Println("Accumulated verification time (weeks) vs verified claims:")
	fmt.Printf("%-9s", "claims")
	for _, s := range res.Systems {
		fmt.Printf(" %12s", s.System)
	}
	fmt.Println()
	// Align series on verified-claim counts of the first system.
	if len(res.Systems) == 0 {
		return fmt.Errorf("no systems")
	}
	n := len(res.Systems[0].Series)
	for i := 0; i < n; i++ {
		fmt.Printf("%-9d", res.Systems[0].Series[i].VerifiedClaims)
		for _, s := range res.Systems {
			if i < len(s.Series) {
				fmt.Printf(" %12.2f", s.Series[i].Weeks)
			} else {
				fmt.Printf(" %12s", "-")
			}
		}
		fmt.Println()
	}
	return nil
}

// fig8 prints classifier accuracy evolution for Scrutinizer vs Sequential.
func (r *runner) fig8() error {
	res, err := r.simulation()
	if err != nil {
		return err
	}
	var seq, scr *sim.SystemResult
	for i := range res.Systems {
		switch res.Systems[i].System {
		case sim.SystemSequential:
			seq = &res.Systems[i]
		case sim.SystemScrutinizer:
			scr = &res.Systems[i]
		}
	}
	if seq == nil || scr == nil {
		return fmt.Errorf("simulation lacks assisted systems")
	}
	fmt.Println("Average classifier accuracy vs verified claims (paper: Scrutinizer dominates mid-run):")
	fmt.Printf("%-9s %12s %12s\n", "claims", "Scrutinizer", "Sequential")
	for i := range scr.Series {
		line := fmt.Sprintf("%-9d %12.3f", scr.Series[i].VerifiedClaims, scr.Series[i].AvgAccuracy)
		if i < len(seq.Series) {
			line += fmt.Sprintf(" %12.3f", seq.Series[i].AvgAccuracy)
		}
		fmt.Println(line)
	}
	return nil
}

// fig9 prints per-classifier accuracy evolution for Scrutinizer.
func (r *runner) fig9() error {
	res, err := r.simulation()
	if err != nil {
		return err
	}
	var scr *sim.SystemResult
	for i := range res.Systems {
		if res.Systems[i].System == sim.SystemScrutinizer {
			scr = &res.Systems[i]
		}
	}
	if scr == nil {
		return fmt.Errorf("no Scrutinizer run")
	}
	fmt.Println("Per-classifier accuracy vs verified claims (paper: row keys hardest):")
	fmt.Printf("%-9s %10s %10s %10s %10s\n", "claims", "relation", "rowkey", "attribute", "formula")
	for _, s := range scr.Series {
		fmt.Printf("%-9d %10.3f %10.3f %10.3f %10.3f\n",
			s.VerifiedClaims, s.PerClassifier[0], s.PerClassifier[1], s.PerClassifier[2], s.PerClassifier[3])
	}
	return nil
}

// ablations runs the DESIGN.md §4 ablation comparisons: claim-ordering
// strategies and the question-planning design choices.
func (r *runner) ablations() error {
	w, err := worldgen.Generate(r.worldCfg)
	if err != nil {
		return err
	}
	fmt.Println("claim-ordering ablation (team-weeks, lower is better):")
	for _, ord := range []core.Ordering{core.OrderILP, core.OrderGreedy, core.OrderSequential, core.OrderRandom} {
		engine, err := sim.BuildEngine(w, sim.SimCostModel(), 3)
		if err != nil {
			return err
		}
		team, err := crowd.NewTeam("A", 3, 0.98, 3)
		if err != nil {
			return err
		}
		vc := core.VerifyConfig{
			BatchSize:       20,
			SectionReadCost: 60,
			Ordering:        ord,
			Seed:            3,
			Parallelism:     r.parallel,
		}
		if ord == core.OrderILP {
			vc.UtilityWeight = 60
		}
		res, err := engine.Verify(context.Background(), w.Document, team, vc)
		if err != nil {
			return err
		}
		fmt.Printf("  %-11s %.3f weeks\n", ord, res.Seconds/sim.SecondsPerWeek(3))
	}

	fmt.Println("\nanswer-option ordering (expected property-screen cost, Cor. 2):")
	options := []planner.Option{
		{Value: "e", Prob: 0.05}, {Value: "d", Prob: 0.10},
		{Value: "c", Prob: 0.15}, {Value: "b", Prob: 0.25}, {Value: "a", Prob: 0.45},
	}
	fmt.Printf("  sorted:   %.2f x vp\n", planner.ExpectedVerificationCost(planner.SortOptions(options), 1))
	fmt.Printf("  unsorted: %.2f x vp\n", planner.ExpectedVerificationCost(options, 1))

	fmt.Println("\nscreen/option budgets (Theorem 1 overhead bound):")
	cm := planner.DefaultCostModel()
	fmt.Printf("  Corollary 1 (nop=%d, nsc=%d): %.2f\n",
		cm.NumOptions(), cm.NumScreens(), cm.OverheadBound(cm.NumOptions(), cm.NumScreens()))
	fmt.Printf("  naive (50, 50):              %.2f\n", cm.OverheadBound(50, 50))
	return nil
}

// fig10 prints top-k accuracy per classifier.
func (r *runner) fig10() error {
	res, err := r.simulation()
	if err != nil {
		return err
	}
	if len(res.TopK) == 0 {
		return fmt.Errorf("no top-k data (Scrutinizer system not run)")
	}
	fmt.Println("Top-k accuracy (paper: most potential reached by k=10):")
	fmt.Printf("%-5s %9s %10s %10s %10s %10s\n", "k", "average", "relation", "rowkey", "attribute", "formula")
	for _, p := range res.TopK {
		fmt.Printf("%-5d %9.3f %10.3f %10.3f %10.3f %10.3f\n",
			p.K, p.Average, p.PerKind[0], p.PerKind[1], p.PerKind[2], p.PerKind[3])
	}
	return nil
}
