// Command datagen materialises a synthetic world to disk: one CSV per
// relation plus a claims.tsv with the document's claims and annotations.
// Useful for inspecting what the generator produces and for feeding the
// corpus into external tools.
//
// Usage:
//
//	datagen -out dir [-scale small|paper] [-seed n] [-max-relations n]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/repro/scrutinizer/internal/worldgen"
)

func main() {
	out := flag.String("out", "world", "output directory")
	scale := flag.String("scale", "small", "world scale: small or paper")
	seed := flag.Int64("seed", 7, "world seed")
	maxRel := flag.Int("max-relations", 100, "cap on CSV files written (0 = all)")
	flag.Parse()

	cfg := worldgen.SmallScale()
	if *scale == "paper" {
		cfg = worldgen.PaperScale()
	}
	cfg.Seed = *seed

	w, err := worldgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(*out, "relations"), 0o755); err != nil {
		fatal(err)
	}

	written := 0
	for _, name := range w.Corpus.Names() {
		if *maxRel > 0 && written >= *maxRel {
			break
		}
		rel, err := w.Corpus.Relation(name)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*out, "relations", name+".csv"))
		if err != nil {
			fatal(err)
		}
		err = rel.WriteCSV(f)
		cerr := f.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		written++
	}

	jf, err := os.Create(filepath.Join(*out, "document.json"))
	if err != nil {
		fatal(err)
	}
	if err := w.Document.WriteJSON(jf); err != nil {
		fatal(err)
	}
	if err := jf.Close(); err != nil {
		fatal(err)
	}

	cf, err := os.Create(filepath.Join(*out, "claims.tsv"))
	if err != nil {
		fatal(err)
	}
	defer cf.Close()
	fmt.Fprintln(cf, "id\tsection\tkind\tcorrect\tparam\ttext\trelations\tkeys\tattrs\tformula\tvalue")
	for _, c := range w.Document.Claims {
		fmt.Fprintf(cf, "%d\t%d\t%s\t%v\t%g\t%s\t%s\t%s\t%s\t%s\t%g\n",
			c.ID, c.Section, c.Kind, c.Correct, c.Param, c.Text,
			strings.Join(c.Truth.Relations, ";"),
			strings.Join(c.Truth.Keys, ";"),
			strings.Join(c.Truth.Attrs, ";"),
			c.Truth.Formula, c.Truth.Value)
	}

	s := w.Corpus.Stats()
	fmt.Printf("wrote %d relation CSVs (of %d) and %d claims to %s\n",
		written, s.Relations, len(w.Document.Claims), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
