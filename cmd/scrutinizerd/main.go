// Command scrutinizerd serves Scrutinizer as a long-running, multi-tenant
// HTTP service built on the corpus / verifier / run resource model:
//
//   - Corpora are registered relational data sets. The corpus loaded at
//     startup (-corpus, or a synthetic world) is registered as "default";
//     more are created over the /v1 API and populated with CSV uploads.
//   - Verifiers are trained model bundles over a corpus: training fits the
//     feature pipeline once on the posted annotated document and
//     bootstraps the classifiers from "a database of previously checked
//     claims". A trained verifier serves any number of documents without
//     refitting — the fit-once / verify-many amortization the paper's IEA
//     deployment relies on.
//   - Runs execute one document against a verifier: mode "batch" answers
//     every question screen with the simulated crowd in-process and
//     returns the report inline; mode "session" parks an interactive
//     question/answer session. Between answers a session holds no
//     goroutines; batch-boundary retraining runs inside the answer that
//     completes a batch, on the run's private engine. Sessions idle past
//     -session-ttl are evicted.
//
// The legacy single-corpus routes (/verify, /sessions) are preserved
// unchanged as aliases onto the default corpus; they fit a fresh model
// per request, exactly as before the /v1 surface existed.
//
// Usage:
//
//	scrutinizerd [-addr :8080] [-corpus dir] [-claims n] [-seed n] [-parallel n]
//	             [-pprof addr] [-mutexprofile n] [-blockprofile n]
//	             [-session-ttl 30m] [-max-sessions 256] [-data-dir dir]
//	             [-log-level info]
//
// Without -corpus the daemon generates a synthetic world corpus (the
// quickest way to try the API: generate a matching document with
// cmd/datagen or the snippet in the README).
//
// # Durability
//
// -data-dir (off by default) makes the /v1 registry survive restarts:
// every accepted mutation — corpus create/delete, relation upload,
// verifier training, session create/answer/delete — is appended to a
// write-ahead journal in that directory before the HTTP response
// acknowledges it, and trained models are parked as snapshot blobs. On
// boot the daemon replays the journal: corpora are rebuilt from their
// journaled relations, verifiers are re-materialized from their model
// snapshots (falling back to a deterministic retrain from the journaled
// training document), and interactive sessions are re-parked by replaying
// their answer logs — all bit-identical to the pre-crash state. A torn
// final record (crash mid-append) is detected by checksum and truncated:
// it was never acknowledged, so losing it is correct. Without -data-dir
// the daemon is ephemeral, exactly as before.
//
// # Profiling
//
// -pprof (off by default) serves net/http/pprof on its own listener,
// separate from the API address so profiling is never exposed on the
// serving port. To profile a live verification service:
//
//	scrutinizerd -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30   # CPU
//	go tool pprof http://localhost:6060/debug/pprof/heap                 # allocations
//	curl -s http://localhost:6060/debug/pprof/goroutine?debug=2          # stuck workers
//
// Fire /verify requests while the CPU profile records; the hot paths to
// look for are classifier scoring (scoreInto), query generation and the
// scheduler ILP.
//
// Lock contention has its own profiles, armed by -mutexprofile (sample
// 1/N mutex contention events) and -blockprofile (sample blocking events
// of at least N ns) since both cost a little on every lock operation.
// Two commands answer "where do concurrent tenants wait":
//
//	scrutinizerd -pprof localhost:6060 -mutexprofile 5 &
//	go tool pprof -top http://localhost:6060/debug/pprof/mutex
//
// Drive load (cmd/loadgen) while the profile accumulates; healthy output
// concentrates delay in the runtime, not in scrutinizer's own locks —
// the shared hot paths (query cache, session registry, corpus index,
// verifier snapshots) are sharded or lock-free precisely so this profile
// stays boring under multi-tenant load.
//
// Endpoints (versioned /v1 surface):
//
//	POST   /v1/corpora                           create a corpus (optionally seeded with inline CSV relations)
//	GET    /v1/corpora                           list corpora
//	GET    /v1/corpora/{id}                      corpus stats
//	DELETE /v1/corpora/{id}                      drop a corpus and its verifiers
//	PUT    /v1/corpora/{id}/relations/{name}     upload one relation as a raw CSV body
//	DELETE /v1/corpora/{id}/relations/{name}     drop a relation (only while the corpus has no verifiers)
//	POST   /v1/corpora/{id}/verifiers            train a verifier from an annotated document
//	GET    /v1/verifiers[/{id}]                  list / inspect verifiers
//	DELETE /v1/verifiers/{id}                    drop a verifier
//	POST   /v1/verifiers/{id}/runs               run a document (mode "batch" or "session")
//	GET    /v1/runs/{id}                         interactive run progress
//	GET    /v1/runs/{id}/questions               pending question screens
//	POST   /v1/runs/{id}/answers                 post one answer or a batch of answers
//	GET    /v1/runs/{id}/report                  outcomes so far (complete once done)
//	DELETE /v1/runs/{id}                         drop an interactive run
//
// Legacy endpoints (aliases onto the default corpus, behaviour unchanged):
//
//	GET    /metrics                  Prometheus text-format metrics for every serving layer
//	GET    /healthz                  liveness + version, tenant, corpus and session statistics
//	POST   /verify                   document JSON in, verification report JSON out
//	POST   /sessions                 create an interactive session (document JSON in)
//	GET    /sessions/{id}            session progress (also resolves /v1 run IDs)
//	GET    /sessions/{id}/questions  pending question screens
//	POST   /sessions/{id}/answers    post one answer or a batch of answers
//	GET    /sessions/{id}/report     outcomes so far (complete once done)
//	DELETE /sessions/{id}            drop a session
//
// A /verify, /sessions or /v1 runs body is either a bare document (the
// claims.WriteJSON format) or an envelope:
//
//	{
//	  "document":    {...},       // required: the document to verify
//	  "mode":        "batch",     // /v1 runs only: batch | session
//	  "team":        3,           // batch runs: simulated checkers (default 3)
//	  "checkers":    1,           // session runs: humans skimming each section
//	  "batch":       100,         // retraining batch size (default 100)
//	  "parallelism": 0,           // 0 = server default
//	  "ordering":    "ilp",       // ilp | sequential | greedy | random
//	  "seed":        7,           // legacy: system (+ crowd) seed; also the random-ordering seed
//	  "section_read_cost": 0      // seconds per section skim
//	}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (served only when -pprof is set)
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/guard"
	"github.com/repro/scrutinizer/internal/obs"
	istore "github.com/repro/scrutinizer/internal/store"
	"github.com/repro/scrutinizer/internal/table"
)

// daemonLog is the process logger (logfmt on stderr). main re-levels it
// from -log-level before anything is served; tests and embedders get the
// info-level default.
var daemonLog = obs.NewLogger(nil, obs.LevelInfo)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	corpusDir := flag.String("corpus", "", "directory of CSV relations (default: synthetic world corpus)")
	numClaims := flag.Int("claims", 200, "synthetic world size when -corpus is not given")
	seed := flag.Int64("seed", 7, "synthetic world seed")
	parallel := flag.Int("parallel", 0, "default per-batch verification fan-out (0 = all CPUs)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict interactive sessions idle longer than this (0 = never)")
	maxSessions := flag.Int("max-sessions", 256, "cap on concurrent interactive sessions (0 = unlimited)")
	dataDir := flag.String("data-dir", "", "durable state directory: journal /v1 mutations and recover them on boot (empty = ephemeral)")
	mutexProfile := flag.Int("mutexprofile", 0, "sample 1/N mutex contention events for /debug/pprof/mutex (0 = off; 1 = every event)")
	blockProfile := flag.Int("blockprofile", 0, "sample blocking events >= N ns for /debug/pprof/block (0 = off; 1 = every event)")
	requestTimeout := flag.Duration("request-timeout", 0, "server-enforced deadline per verification request (0 = none)")
	rateLimit := flag.Float64("rate-limit", 0, "per-tenant request rate on expensive routes, requests/second (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 10, "per-tenant token-bucket burst for -rate-limit")
	maxRunsPerTenant := flag.Int("max-runs-per-tenant", 0, "concurrent runs (batch + interactive) per tenant (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "global bound on in-flight expensive requests; beyond it requests are shed with 503 (0 = unlimited)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	daemonLog = obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))

	// Contention profiling is off by default (both profiles cost on every
	// lock operation once armed). Turn them on next to -pprof to see where
	// concurrent tenants actually wait:
	//
	//	scrutinizerd -pprof localhost:6060 -mutexprofile 5 &
	//	go tool pprof -top http://localhost:6060/debug/pprof/mutex
	if *mutexProfile > 0 {
		runtime.SetMutexProfileFraction(*mutexProfile)
	}
	if *blockProfile > 0 {
		runtime.SetBlockProfileRate(*blockProfile)
	}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// The pprof handlers self-register on http.DefaultServeMux; serve
		// that mux on a dedicated, fully-configured listener so profiling
		// endpoints never share the API port and participate in graceful
		// shutdown like the API server.
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       time.Minute,
			// Generous write window: profile?seconds=30 streams for the
			// requested duration before the response completes.
			WriteTimeout: 3 * time.Minute,
			IdleTimeout:  2 * time.Minute,
		}
		go func() {
			daemonLog.Info("pprof listening", "url", "http://"+*pprofAddr+"/debug/pprof/")
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				daemonLog.Error("pprof server failed", "err", err)
			}
		}()
	}

	corpus, err := loadCorpus(*corpusDir, *numClaims, *seed)
	if err != nil {
		daemonLog.Error("loading corpus", "err", err)
		os.Exit(1)
	}
	var st scrutinizer.Store
	var closeStore func() error
	if *dataDir != "" {
		fs, err := scrutinizer.OpenFileStore(*dataDir)
		if err != nil {
			daemonLog.Error("opening data dir", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		// Closed explicitly at the end of the shutdown sequence (after
		// in-flight handlers drain), not deferred: the fatal os.Exit paths
		// skip defers, and a defer would race handlers still appending to
		// the journal.
		closeStore = fs.Close
		st = fs
	}
	s := newServerShell(serverConfig{
		parallel:         *parallel,
		sessionTTL:       *sessionTTL,
		maxSessions:      *maxSessions,
		requestTimeout:   *requestTimeout,
		rateLimit:        *rateLimit,
		rateBurst:        *rateBurst,
		maxRunsPerTenant: *maxRunsPerTenant,
		maxInflight:      *maxInflight,
	}, st)

	// Every request context descends from baseCtx, so cancelling it after
	// the HTTP listener stops cancels whatever verification work is still
	// in flight — the core's checkpoints observe it between rounds.
	baseCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 5 * time.Second,
		// Reading a request body tops out at the 64 MB document cap;
		// five minutes covers that even on slow links.
		ReadTimeout: 5 * time.Minute,
		// Paper-scale /verify runs legitimately take minutes: the write
		// window is wide but bounded so a dead peer can never pin a
		// handler forever.
		WriteTimeout: 30 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	// Listen before replaying the journal: during recovery the probes
	// answer (liveness green, readiness 503) while API routes refuse with
	// 503 until boot finishes, instead of the whole port being dark.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	daemonLog.Info("listening", "addr", *addr)

	if err := s.boot(corpus); err != nil {
		if closeStore != nil {
			closeStore()
		}
		daemonLog.Error("journal recovery failed", "dir", *dataDir, "err", err)
		os.Exit(1)
	}
	if st != nil {
		rec := s.recovered
		daemonLog.Info("journal recovered", "dir", *dataDir,
			"records", rec.Records, "corpora", rec.Corpora,
			"verifiers", rec.Verifiers, "from_snapshot", rec.VerifiersFromSnapshot,
			"retrained", rec.VerifiersRetrained, "sessions", rec.Sessions,
			"skipped", rec.SessionsSkipped)
	}
	stats := s.corpus.Stats()
	daemonLog.Info("corpus ready, serving",
		"relations", stats.Relations, "rows", stats.Rows, "cells", stats.Cells)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if closeStore != nil {
			closeStore()
		}
		daemonLog.Error("serve failed", "err", err)
		os.Exit(1)
	case sig := <-stop:
		// Shutdown ordering matters: stop admitting (readiness goes red,
		// new conns refused), let in-flight handlers finish or time out,
		// cancel whatever is still running, wait for the admission gate to
		// empty, and only then close the store — a handler can never be
		// mid-journal-append when the journal closes.
		daemonLog.Info("draining", "signal", sig.String())
		s.ready.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			daemonLog.Error("shutdown", "err", err)
		}
		if pprofSrv != nil {
			if err := pprofSrv.Shutdown(ctx); err != nil {
				daemonLog.Error("pprof shutdown", "err", err)
			}
		}
		cancelRuns()
		drainStart := time.Now()
		drained := s.gate.Drain(10 * time.Second)
		s.metrics.drainSeconds.Set(time.Since(drainStart).Seconds())
		if !drained {
			daemonLog.Warn("handlers still in flight after drain timeout")
		}
		if closeStore != nil {
			if err := closeStore(); err != nil {
				daemonLog.Error("closing store", "err", err)
			}
		}
		daemonLog.Info("drained, exiting",
			"drain_seconds", time.Since(drainStart).Seconds())
	}
}

// loadCorpus reads every *.csv in dir as one relation, or generates the
// synthetic world corpus when dir is empty.
func loadCorpus(dir string, numClaims int, seed int64) (*scrutinizer.Corpus, error) {
	if dir == "" {
		cfg := scrutinizer.SmallWorld()
		cfg.NumClaims = numClaims
		cfg.Seed = seed
		w, err := scrutinizer.GenerateWorld(cfg)
		if err != nil {
			return nil, err
		}
		return w.Corpus, nil
	}
	return table.ReadCSVDir(dir)
}

// maxBodyBytes caps request bodies: a paper-scale annotated document is a
// few MB, so 64 MB leaves an order-of-magnitude headroom.
const maxBodyBytes = 64 << 20

// defaultCorpusID is the registry name of the corpus loaded at startup;
// the legacy /verify and /sessions routes alias onto it.
const defaultCorpusID = "default"

// serverConfig bundles the daemon's tuning knobs; the zero value means
// "no protection limits, all CPUs, sessions never expire".
type serverConfig struct {
	parallel         int
	sessionTTL       time.Duration
	maxSessions      int
	requestTimeout   time.Duration // server-enforced verification deadline (0 = none)
	rateLimit        float64       // per-tenant requests/second (0 = unlimited)
	rateBurst        float64
	maxRunsPerTenant int // concurrent runs per tenant (0 = unlimited)
	maxInflight      int // global in-flight bound (0 = unlimited)
}

// server holds the shared state of the daemon: the multi-tenant resource
// registry (corpora + verifiers), the interactive session registry shared
// by /v1 runs and legacy sessions, the tenant-protection guards, and —
// for the legacy routes — the default corpus with its query cache.
type server struct {
	svc      *scrutinizer.Service
	corpus   *scrutinizer.Corpus // the default corpus (legacy routes)
	cfg      serverConfig
	parallel int
	maxBody  int64
	sessions *scrutinizer.SessionManager
	qcache   *scrutinizer.QueryCache // the default corpus's shared cache
	started  time.Time
	store    scrutinizer.Store // nil when ephemeral
	// Tenant protection (see guard.go): global admission gate, per-tenant
	// rate limiter and per-tenant run quota. The gate is never nil — it
	// counts in-flight work for shutdown draining even when unbounded.
	gate     *guard.Gate
	rates    *guard.RateLimiter // nil = unlimited
	runQuota *guard.Quota       // nil = unlimited
	// metrics is the observability registry (never nil): serving-layer
	// instruments plus scrape-time mirrors of every component's stats. The
	// health probes render from the same refreshMetrics snapshot /metrics
	// scrapes, so the two surfaces cannot disagree.
	metrics *daemonMetrics
	// ready flips once boot-time journal replay finishes; until then the
	// API surface answers 503 and /readyz reports not-ready. Flipping it
	// back off is the first step of shutdown.
	ready atomic.Bool
	// panicHook, when set by tests, runs inside the answers handler after
	// the session is resolved — the seam for injecting handler panics.
	panicHook func(*http.Request)
	// recovered summarises the boot-time journal replay; zero when the
	// daemon runs without -data-dir.
	recovered scrutinizer.RecoveryStats
	// corpusLocks serializes /v1 mutations per corpus ID (relation
	// uploads/removals against each other and against verifier training
	// over the same corpus) without ever blocking other tenants. Reads
	// during verification need no lock: mutation is rejected once a
	// corpus has verifiers. Entries for deleted corpora linger until
	// process exit — one mutex per corpus ID ever seen, negligible.
	corpusLocks sync.Map // corpus id -> *sync.Mutex
}

// lockCorpus returns the mutation lock for one corpus ID.
func (s *server) lockCorpus(id string) *sync.Mutex {
	mu, _ := s.corpusLocks.LoadOrStore(id, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// newServerShell builds the daemon's registries and guards but replays no
// journal: the HTTP listener can start on the shell (probes answer, API
// routes 503) while boot runs the replay.
func newServerShell(cfg serverConfig, st scrutinizer.Store) *server {
	if cfg.parallel <= 0 {
		cfg.parallel = core.DefaultParallelism()
	}
	started := time.Now()
	m := newDaemonMetrics(started)
	if st != nil {
		// Journal appends and boot-time replay get timed at the store
		// boundary; the daemon's closeStore keeps its handle to the inner
		// store, so wrapping here changes nothing about shutdown.
		st = istore.Monitor(st, m.reg)
	}
	// Run-lifecycle counters ride the core package's observer seam —
	// process-global, so the last shell built owns them (one daemon per
	// process outside tests).
	core.SetObserver(m.observer())
	s := &server{
		svc:      scrutinizer.NewService(),
		cfg:      cfg,
		parallel: cfg.parallel,
		maxBody:  maxBodyBytes,
		sessions: scrutinizer.NewSessionManager(cfg.sessionTTL, cfg.maxSessions),
		started:  started,
		store:    st,
		gate:     guard.NewGate(cfg.maxInflight),
		rates:    guard.NewRateLimiter(cfg.rateLimit, cfg.rateBurst, nil),
		runQuota: guard.NewQuota(cfg.maxRunsPerTenant),
		metrics:  m,
	}
	m.reg.OnScrape(func() { s.refreshMetrics() })
	return s
}

// boot replays the journal (when durable), registers the default corpus
// and flips the server ready. Handlers only read the fields boot writes
// after observing ready, so the atomic flip publishes them safely.
func (s *server) boot(corpus *scrutinizer.Corpus) error {
	if s.store != nil {
		recovered, err := s.svc.Recover(s.store, s.sessions)
		if err != nil {
			return err
		}
		s.recovered = recovered
	}
	// The default corpus backs the legacy routes. A recovered journal may
	// already hold one — from this boot's own past, where it was journaled
	// at first startup — and the durable copy wins over the freshly loaded
	// one so legacy traffic sees the state clients were promised.
	if existing, ok := s.svc.Corpus(defaultCorpusID); ok {
		corpus = existing
	} else if _, err := s.svc.AddCorpus(defaultCorpusID, corpus); err != nil {
		return fmt.Errorf("registering default corpus: %w", err)
	}
	s.qcache, _ = s.svc.CorpusQueryCache(defaultCorpusID)
	s.corpus = corpus
	s.ready.Store(true)
	return nil
}

// newServer is the one-shot constructor (shell + boot): what tests and
// embedders want when there is no listener racing the replay.
func newServer(corpus *scrutinizer.Corpus, cfg serverConfig, st scrutinizer.Store) (*server, error) {
	s := newServerShell(cfg, st)
	if err := s.boot(corpus); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())

	// Legacy surface: single-corpus, per-request model fitting. Preserved
	// unchanged as an alias onto the default corpus.
	mux.HandleFunc("POST /verify", s.handleVerify)
	mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /sessions/{id}", s.handleSessionProgress)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /sessions/{id}/questions", s.handleSessionQuestions)
	mux.HandleFunc("POST /sessions/{id}/answers", s.handleSessionAnswers)
	mux.HandleFunc("GET /sessions/{id}/report", s.handleSessionReport)

	// Versioned multi-tenant surface (v1.go): corpora, verifiers, runs.
	mux.HandleFunc("POST /v1/corpora", s.handleCorpusCreate)
	mux.HandleFunc("GET /v1/corpora", s.handleCorpusList)
	mux.HandleFunc("GET /v1/corpora/{id}", s.handleCorpusGet)
	mux.HandleFunc("DELETE /v1/corpora/{id}", s.handleCorpusDelete)
	mux.HandleFunc("PUT /v1/corpora/{id}/relations/{name}", s.handleRelationPut)
	mux.HandleFunc("DELETE /v1/corpora/{id}/relations/{name}", s.handleRelationDelete)
	mux.HandleFunc("POST /v1/corpora/{id}/verifiers", s.handleVerifierCreate)
	mux.HandleFunc("GET /v1/verifiers", s.handleVerifierList)
	mux.HandleFunc("GET /v1/verifiers/{id}", s.handleVerifierGet)
	mux.HandleFunc("DELETE /v1/verifiers/{id}", s.handleVerifierDelete)
	mux.HandleFunc("POST /v1/verifiers/{id}/runs", s.handleRunCreate)

	// Interactive /v1 runs are sessions: the run ID is a session ID, so
	// the run sub-resources reuse the session handlers (and legacy
	// /sessions/{id} routes resolve /v1 run IDs too).
	mux.HandleFunc("GET /v1/runs/{id}", s.handleSessionProgress)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/runs/{id}/questions", s.handleSessionQuestions)
	mux.HandleFunc("POST /v1/runs/{id}/answers", s.handleSessionAnswers)
	mux.HandleFunc("GET /v1/runs/{id}/report", s.handleSessionReport)
	// Outermost: the metrics middleware, so every response — including a
	// recovered panic's 500 — is counted and timed; then the panic
	// recoverer; then the readiness wall that keeps the API dark (503)
	// until journal replay finishes.
	return s.withMetrics(s.withRecover(s.withReady(mux)))
}

// buildVersion resolves the daemon's version from the embedded build info
// (module version for released builds, VCS revision for source builds).
func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version := info.Main.Version
	var rev, dirty string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return version + " (" + rev + dirty + ")"
	}
	return version
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness during boot: the process is healthy while journal replay
	// runs, but the registries are still mutating under the replay — so
	// report alive with a minimal body and let /readyz carry the rest.
	if !s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "starting",
			"version":        buildVersion(),
			"uptime_seconds": int(time.Since(s.started).Seconds()),
		})
		return
	}
	// One stats gather serves every surface: refreshMetrics mirrors the
	// component stats into the /metrics registry and hands back the same
	// snapshot for this JSON body, so the probe and the scrape are two
	// renderings of one source of truth.
	snap := s.refreshMetrics()
	// Per-tenant load at a glance: verifier count per corpus, run count
	// per verifier; live sessions per verifier come from the session
	// registry's owner tags.
	perCorpus := make(map[string]any)
	for _, ci := range snap.corpora {
		perCorpus[ci.ID] = map[string]any{
			"relations": ci.Relations,
			"verifiers": ci.Verifiers,
		}
	}
	perVerifier := make(map[string]any)
	for _, vi := range snap.verifiers {
		perVerifier[vi.ID] = map[string]any{
			"corpus":           vi.CorpusID,
			"runs_started":     vi.Runs,
			"model_generation": vi.Generation,
			"trained_on":       vi.TrainedOn,
			"active_sessions":  snap.sess.ByOwner[vi.ID],
		}
	}
	body := map[string]any{
		"status":  "ok",
		"version": buildVersion(),
		"corpus": map[string]int{
			"relations": snap.corpus.Relations,
			"rows":      snap.corpus.Rows,
			"cells":     snap.corpus.Cells,
		},
		// service: the /v1 registry — tenant counts plus per-corpus and
		// per-verifier breakdowns.
		"service": map[string]any{
			"corpora":      snap.svc.Corpora,
			"verifiers":    snap.svc.Verifiers,
			"runs_started": snap.svc.Runs,
			"per_corpus":   perCorpus,
			"per_verifier": perVerifier,
		},
		"sessions": map[string]any{
			"active":           snap.sess.Active,
			"queued_questions": snap.sess.PendingQuestions,
			"model_generation": snap.sess.MaxGeneration,
			"created_total":    snap.sess.CreatedTotal,
			"evicted_total":    snap.sess.EvictedTotal,
			"answered_total":   snap.sess.AnsweredTotal,
			"by_owner":         snap.sess.ByOwner,
		},
		// query_cache: the default corpus's tentative-execution memo
		// shared by every legacy request and session over it; generation
		// is the corpus generation its entries were computed under.
		"query_cache": snap.qc,
		// interner: the interned columnar index compiled queries execute
		// against (entries per ID space + the snapshot's generation).
		"interner": map[string]any{
			"relations":  snap.index.Relations,
			"rows":       snap.index.Rows,
			"cols":       snap.index.Cols,
			"cells":      snap.index.Cells,
			"generation": snap.index.Generation,
		},
		"parallelism":    s.parallel,
		"uptime_seconds": int(time.Since(s.started).Seconds()),
		// admission: the global in-flight gate — shedding means the daemon
		// is at -max-inflight and rejecting expensive requests with 503.
		"admission": snap.gate,
	}
	// store: durable-state health when the daemon runs with -data-dir —
	// journal growth plus what the last boot replayed.
	if snap.hasStore {
		body["store"] = map[string]any{
			"backend":   snap.store,
			"recovered": s.recovered,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// readBody slurps a capped request body, writing the HTTP error itself
// when reading fails. The bool reports success.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return nil, false
	}
	return buf.Bytes(), true
}

// parseOrdering maps the wire name to a core ordering.
func parseOrdering(name string) (core.Ordering, error) {
	switch name {
	case "", "ilp":
		return core.OrderILP, nil
	case "sequential":
		return core.OrderSequential, nil
	case "greedy":
		return core.OrderGreedy, nil
	case "random":
		return core.OrderRandom, nil
	}
	return 0, fmt.Errorf("unknown ordering %q", name)
}

// documentRequest is the shared /verify and /sessions envelope. Document
// is raw so a bare document body can be detected and accepted too.
type documentRequest struct {
	Document        json.RawMessage `json:"document"`
	Team            int             `json:"team"`
	Checkers        int             `json:"checkers"`
	Batch           int             `json:"batch"`
	Parallelism     int             `json:"parallelism"`
	Ordering        string          `json:"ordering"`
	Seed            int64           `json:"seed"`
	SectionReadCost float64         `json:"section_read_cost"`
}

// readDocument parses a document from an envelope field, falling back to
// the whole body when the field is absent (bare-document requests).
func readDocument(raw []byte, field json.RawMessage) (*scrutinizer.Document, error) {
	docBytes := []byte(field)
	if len(docBytes) == 0 {
		docBytes = raw
	}
	return scrutinizer.ReadDocumentJSON(bytes.NewReader(docBytes))
}

// decodeDocumentRequest parses an envelope or bare-document body.
func decodeDocumentRequest(raw []byte) (*documentRequest, *scrutinizer.Document, error) {
	var req documentRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, nil, fmt.Errorf("malformed JSON: %w", err)
	}
	doc, err := readDocument(raw, req.Document)
	if err != nil {
		return nil, nil, err
	}
	return &req, doc, nil
}

// verifyResponse is the /verify report.
type verifyResponse struct {
	Title       string          `json:"title"`
	Claims      int             `json:"claims"`
	Correct     int             `json:"correct"`
	Incorrect   int             `json:"incorrect"`
	Skipped     int             `json:"skipped"`
	Accuracy    float64         `json:"accuracy"`
	CrowdSecs   float64         `json:"crowd_seconds"`
	Batches     int             `json:"batches"`
	Parallelism int             `json:"parallelism"`
	WallMillis  int64           `json:"wall_ms"`
	Outcomes    []verifyOutcome `json:"outcomes"`
}

type verifyOutcome struct {
	ClaimID int     `json:"claim_id"`
	Verdict string  `json:"verdict"`
	Seconds float64 `json:"seconds"`
	SQL     string  `json:"sql,omitempty"`
	Value   float64 `json:"value"`
	// Suggestion is a pointer so a legitimate zero-valued correction
	// survives serialisation: nil = no correction proposed.
	Suggestion *float64 `json:"suggestion,omitempty"`
}

func toVerifyOutcome(o *scrutinizer.Outcome) verifyOutcome {
	vo := verifyOutcome{
		ClaimID: o.ClaimID,
		Verdict: o.Verdict.String(),
		Seconds: o.Seconds,
		Value:   o.Value,
	}
	if o.Query != nil {
		vo.SQL = o.Query.SQL()
	}
	if o.HasSuggestion {
		s := o.Suggestion
		vo.Suggestion = &s
	}
	return vo
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.admit(w)
	if !ok {
		return
	}
	defer leave()
	// Legacy routes are single-corpus: the default corpus is the tenant.
	if !s.rateLimit(w, defaultCorpusID) {
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, doc, err := decodeDocumentRequest(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, c := range doc.Claims {
		if c.Truth == nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf(
				"claim %d has no ground-truth annotation; /verify runs the simulated-crowd flow, which answers from annotations (use an interactive session via POST /sessions for human answers)", c.ID))
			return
		}
	}

	ordering, err := parseOrdering(req.Ordering)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	team := req.Team
	if team <= 0 {
		team = 3
	}
	parallelism := req.Parallelism
	if parallelism <= 0 {
		parallelism = s.parallel
	}

	release, ok := s.acquireRun(w, defaultCorpusID)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.runCtx(r)
	defer cancel()

	start := time.Now()
	sys, err := scrutinizer.New(s.corpus, doc, scrutinizer.Options{Seed: req.Seed, QueryCache: s.qcache})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	crowd, err := sys.NewTeam(team)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := sys.VerifyDocument(ctx, crowd, scrutinizer.VerifyOptions{
		BatchSize:       req.Batch,
		SectionReadCost: req.SectionReadCost,
		Ordering:        ordering,
		Parallelism:     parallelism,
		Seed:            req.Seed,
	})
	if err != nil {
		httpError(w, verifyErrStatus(err), err.Error())
		return
	}

	resp := verifyResponse{
		Title:       doc.Title,
		Claims:      len(doc.Claims),
		Accuracy:    res.Accuracy(),
		CrowdSecs:   res.Seconds,
		Batches:     res.Batches,
		Parallelism: parallelism,
		WallMillis:  time.Since(start).Milliseconds(),
	}
	for _, o := range res.Outcomes {
		vo := toVerifyOutcome(o)
		switch o.Verdict {
		case scrutinizer.VerdictCorrect:
			resp.Correct++
		case scrutinizer.VerdictIncorrect:
			resp.Incorrect++
		default:
			resp.Skipped++
		}
		resp.Outcomes = append(resp.Outcomes, vo)
	}
	writeJSON(w, http.StatusOK, resp)
}

// sessionCreateResponse answers POST /sessions: the handle plus the first
// batch of questions so a client can start answering without a second
// round trip.
type sessionCreateResponse struct {
	ID        string                        `json:"id"`
	Claims    int                           `json:"claims"`
	Progress  scrutinizer.SessionProgress   `json:"progress"`
	Questions []scrutinizer.SessionQuestion `json:"questions"`
}

func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.admit(w)
	if !ok {
		return
	}
	defer leave()
	if !s.rateLimit(w, defaultCorpusID) {
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, doc, err := decodeDocumentRequest(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ordering, err := parseOrdering(req.Ordering)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	parallelism := req.Parallelism
	if parallelism <= 0 {
		parallelism = s.parallel
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	sys, err := scrutinizer.New(s.corpus, doc, scrutinizer.Options{Seed: req.Seed, QueryCache: s.qcache})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	sess, err := sys.StartSession(ctx, s.sessions, scrutinizer.SessionOptions{
		Verify: scrutinizer.VerifyOptions{
			BatchSize:       req.Batch,
			SectionReadCost: req.SectionReadCost,
			Ordering:        ordering,
			Parallelism:     parallelism,
			Seed:            req.Seed,
		},
		Checkers: req.Checkers,
	})
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = verifyErrStatus(err)
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sessionCreateResponse{
		ID:        sess.ID(),
		Claims:    len(doc.Claims),
		Progress:  sess.Progress(),
		Questions: sess.Questions(),
	})
}

// session fetches the handler's session or writes the 404.
func (s *server) session(w http.ResponseWriter, r *http.Request) (*scrutinizer.Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no session %q (expired or never created)", id))
		return nil, false
	}
	return sess, true
}

func (s *server) handleSessionProgress(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.Progress())
}

func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Remove(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *server) handleSessionQuestions(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	qs := sess.Questions()
	writeJSON(w, http.StatusOK, map[string]any{
		"questions": qs,
		"done":      sess.Done(),
	})
}

// answersRequest posts one or many answers. Both shapes are accepted:
//
//	{"answers": [{"claim_id": 3, "value": "...", "seconds": 2.5}, ...]}
//	{"claim_id": 3, "value": "...", "seconds": 2.5}
type answersRequest struct {
	Answers []scrutinizer.SessionAnswer `json:"answers"`
}

// answersResponse reports what was accepted plus the follow-up questions
// for the answered claims, so a checker can keep going without polling.
type answersResponse struct {
	Accepted  int                           `json:"accepted"`
	Questions []scrutinizer.SessionQuestion `json:"questions"`
	Progress  scrutinizer.SessionProgress   `json:"progress"`
}

func (s *server) handleSessionAnswers(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.admit(w)
	if !ok {
		return
	}
	defer leave()
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	// Answers are charged to the run's owner (the verifier for /v1 runs;
	// legacy sessions fall back to the default corpus) so one tenant
	// hammering its session cannot starve another's.
	tenant := sess.Owner()
	if tenant == "" {
		tenant = defaultCorpusID
	}
	if !s.rateLimit(w, tenant) {
		return
	}
	// A panic while applying answers leaves the session in an undefined
	// state: tear it down (journaled, so recovery will not resurrect it)
	// and let withRecover turn the panic into the 500.
	defer func() {
		if p := recover(); p != nil {
			s.sessions.Remove(sess.ID())
			panic(p)
		}
	}()
	if s.panicHook != nil {
		s.panicHook(r)
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Field presence, not zero values, decides the body shape: claim ID 0
	// and an empty value (a skip) are both legitimate answer contents.
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	var req answersRequest
	if _, ok := fields["answers"]; ok {
		if err := json.Unmarshal(raw, &req); err != nil {
			httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
	} else if _, ok := fields["claim_id"]; ok {
		var single scrutinizer.SessionAnswer
		if err := json.Unmarshal(raw, &single); err != nil {
			httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		req.Answers = []scrutinizer.SessionAnswer{single}
	}
	if len(req.Answers) == 0 {
		httpError(w, http.StatusBadRequest, "no answers in body")
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	resp := answersResponse{}
	for _, a := range req.Answers {
		next, err := sess.Answer(ctx, a)
		if err != nil {
			// A cancelled or timed-out answer was rolled back before being
			// journaled — the question is still pending, so the client can
			// repost it. Anything else is a conflict: the target question
			// is gone (answered already, or the claim finished). Either
			// way, report what was accepted so far.
			status := http.StatusConflict
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = verifyErrStatus(err)
				w.Header().Set("Retry-After", "1")
			}
			resp.Progress = sess.Progress()
			writeJSON(w, status, map[string]any{
				"error":    err.Error(),
				"accepted": resp.Accepted,
				"progress": resp.Progress,
			})
			return
		}
		resp.Accepted++
		if next != nil {
			resp.Questions = append(resp.Questions, *next)
		}
	}
	resp.Progress = sess.Progress()
	writeJSON(w, http.StatusOK, resp)
}

// sessionReportResponse is the /sessions/{id}/report payload; outcomes
// are partial until Done.
type sessionReportResponse struct {
	ID        string          `json:"id"`
	Done      bool            `json:"done"`
	Claims    int             `json:"claims"`
	Correct   int             `json:"correct"`
	Incorrect int             `json:"incorrect"`
	Skipped   int             `json:"skipped"`
	Accuracy  float64         `json:"accuracy"`
	CrowdSecs float64         `json:"crowd_seconds"`
	Batches   int             `json:"batches"`
	Outcomes  []verifyOutcome `json:"outcomes"`
}

func (s *server) handleSessionReport(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	rep := sess.Report()
	resp := sessionReportResponse{
		ID:        sess.ID(),
		Done:      rep.Done,
		Claims:    sess.Progress().Total,
		Accuracy:  rep.Accuracy,
		CrowdSecs: rep.Seconds,
		Batches:   rep.Batches,
	}
	for _, o := range rep.Outcomes {
		switch o.Verdict {
		case scrutinizer.VerdictCorrect:
			resp.Correct++
		case scrutinizer.VerdictIncorrect:
			resp.Incorrect++
		default:
			resp.Skipped++
		}
		resp.Outcomes = append(resp.Outcomes, toVerifyOutcome(o))
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		daemonLog.Error("encoding response", "err", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
