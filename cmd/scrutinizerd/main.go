// Command scrutinizerd serves Scrutinizer as a long-running HTTP service:
// documents of annotated claims are POSTed in, verification reports come
// back as JSON. The corpus is loaded once at startup and shared by all
// requests; each request gets its own System (feature pipeline +
// classifiers) fitted to the posted document, and its batches are verified
// across -parallel goroutines.
//
// Usage:
//
//	scrutinizerd [-addr :8080] [-corpus dir] [-claims n] [-seed n] [-parallel n] [-pprof addr]
//
// Without -corpus the daemon generates a synthetic world corpus (the
// quickest way to try the API: generate a matching document with
// cmd/datagen or the snippet in the README).
//
// # Profiling
//
// -pprof (off by default) serves net/http/pprof on its own listener,
// separate from the API address so profiling is never exposed on the
// serving port. To profile a live verification service:
//
//	scrutinizerd -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30   # CPU
//	go tool pprof http://localhost:6060/debug/pprof/heap                 # allocations
//	curl -s http://localhost:6060/debug/pprof/goroutine?debug=2          # stuck workers
//
// Fire /verify requests while the CPU profile records; the hot paths to
// look for are classifier scoring (scoreInto), query generation and the
// scheduler ILP.
//
// Endpoints:
//
//	GET  /healthz   liveness + corpus statistics
//	POST /verify    document JSON in, verification report JSON out
//
// A /verify body is either a bare document (the claims.WriteJSON format) or
// an envelope:
//
//	{
//	  "document":    {...},       // required: the document to verify
//	  "team":        3,           // simulated checkers (default 3)
//	  "batch":       100,         // retraining batch size (default 100)
//	  "parallelism": 0,           // 0 = server default
//	  "ordering":    "ilp",       // ilp | sequential | greedy | random
//	  "seed":        7,           // system + crowd seed
//	  "section_read_cost": 0      // seconds per section skim
//	}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (served only when -pprof is set)
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/table"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	corpusDir := flag.String("corpus", "", "directory of CSV relations (default: synthetic world corpus)")
	numClaims := flag.Int("claims", 200, "synthetic world size when -corpus is not given")
	seed := flag.Int64("seed", 7, "synthetic world seed")
	parallel := flag.Int("parallel", 0, "default per-batch verification fan-out (0 = all CPUs)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof handlers self-register on http.DefaultServeMux; serve
		// that mux on a dedicated listener so profiling endpoints never
		// share the API port.
		go func() {
			log.Printf("scrutinizerd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("scrutinizerd: pprof server: %v", err)
			}
		}()
	}

	corpus, err := loadCorpus(*corpusDir, *numClaims, *seed)
	if err != nil {
		log.Fatal(err)
	}
	s := newServer(corpus, *parallel)
	stats := corpus.Stats()
	log.Printf("scrutinizerd: corpus ready (%d relations, %d rows, %d cells), listening on %s",
		stats.Relations, stats.Rows, stats.Cells, *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		// No write timeout: paper-scale verifications legitimately run for
		// minutes.
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("scrutinizerd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("scrutinizerd: shutdown: %v", err)
		}
	}
}

// loadCorpus reads every *.csv in dir as one relation, or generates the
// synthetic world corpus when dir is empty.
func loadCorpus(dir string, numClaims int, seed int64) (*scrutinizer.Corpus, error) {
	if dir == "" {
		cfg := scrutinizer.SmallWorld()
		cfg.NumClaims = numClaims
		cfg.Seed = seed
		w, err := scrutinizer.GenerateWorld(cfg)
		if err != nil {
			return nil, err
		}
		return w.Corpus, nil
	}
	return table.ReadCSVDir(dir)
}

// server holds the shared, read-only state of the daemon.
type server struct {
	corpus   *scrutinizer.Corpus
	parallel int
	started  time.Time
}

func newServer(corpus *scrutinizer.Corpus, parallel int) *server {
	if parallel <= 0 {
		parallel = core.DefaultParallelism()
	}
	return &server{corpus: corpus, parallel: parallel, started: time.Now()}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/verify", s.handleVerify)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	stats := s.corpus.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"corpus": map[string]int{
			"relations": stats.Relations,
			"rows":      stats.Rows,
			"cells":     stats.Cells,
		},
		"parallelism": s.parallel,
		"uptime_s":    int(time.Since(s.started).Seconds()),
	})
}

// verifyRequest is the /verify envelope. Document is raw so a bare document
// body can be detected and accepted too.
type verifyRequest struct {
	Document        json.RawMessage `json:"document"`
	Team            int             `json:"team"`
	Batch           int             `json:"batch"`
	Parallelism     int             `json:"parallelism"`
	Ordering        string          `json:"ordering"`
	Seed            int64           `json:"seed"`
	SectionReadCost float64         `json:"section_read_cost"`
}

// verifyResponse is the /verify report.
type verifyResponse struct {
	Title       string          `json:"title"`
	Claims      int             `json:"claims"`
	Correct     int             `json:"correct"`
	Incorrect   int             `json:"incorrect"`
	Skipped     int             `json:"skipped"`
	Accuracy    float64         `json:"accuracy"`
	CrowdSecs   float64         `json:"crowd_seconds"`
	Batches     int             `json:"batches"`
	Parallelism int             `json:"parallelism"`
	WallMillis  int64           `json:"wall_ms"`
	Outcomes    []verifyOutcome `json:"outcomes"`
}

type verifyOutcome struct {
	ClaimID int     `json:"claim_id"`
	Verdict string  `json:"verdict"`
	Seconds float64 `json:"seconds"`
	SQL     string  `json:"sql,omitempty"`
	Value   float64 `json:"value"`
	// Suggestion is a pointer so a legitimate zero-valued correction
	// survives serialisation: nil = no correction proposed.
	Suggestion *float64 `json:"suggestion,omitempty"`
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}

	var req verifyRequest
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	docBytes := []byte(req.Document)
	if len(docBytes) == 0 {
		// Bare document body.
		docBytes = buf.Bytes()
	}
	doc, err := scrutinizer.ReadDocumentJSON(bytes.NewReader(docBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, c := range doc.Claims {
		if c.Truth == nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf(
				"claim %d has no ground-truth annotation; the HTTP service runs the simulated-crowd flow, which answers from annotations (plug a custom Oracle in programmatically for human answers)", c.ID))
			return
		}
	}

	ordering := core.OrderILP
	switch req.Ordering {
	case "", "ilp":
	case "sequential":
		ordering = core.OrderSequential
	case "greedy":
		ordering = core.OrderGreedy
	case "random":
		ordering = core.OrderRandom
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown ordering %q", req.Ordering))
		return
	}
	team := req.Team
	if team <= 0 {
		team = 3
	}
	parallelism := req.Parallelism
	if parallelism <= 0 {
		parallelism = s.parallel
	}

	start := time.Now()
	sys, err := scrutinizer.New(s.corpus, doc, scrutinizer.Options{Seed: req.Seed})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	crowd, err := sys.NewTeam(team)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := sys.VerifyDocument(crowd, scrutinizer.VerifyOptions{
		BatchSize:       req.Batch,
		SectionReadCost: req.SectionReadCost,
		Ordering:        ordering,
		Parallelism:     parallelism,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := verifyResponse{
		Title:       doc.Title,
		Claims:      len(doc.Claims),
		Accuracy:    res.Accuracy(),
		CrowdSecs:   res.Seconds,
		Batches:     res.Batches,
		Parallelism: parallelism,
		WallMillis:  time.Since(start).Milliseconds(),
	}
	for _, o := range res.Outcomes {
		vo := verifyOutcome{
			ClaimID: o.ClaimID,
			Verdict: o.Verdict.String(),
			Seconds: o.Seconds,
			Value:   o.Value,
		}
		if o.Query != nil {
			vo.SQL = o.Query.SQL()
		}
		if o.HasSuggestion {
			s := o.Suggestion
			vo.Suggestion = &s
		}
		switch o.Verdict {
		case scrutinizer.VerdictCorrect:
			resp.Correct++
		case scrutinizer.VerdictIncorrect:
			resp.Incorrect++
		default:
			resp.Skipped++
		}
		resp.Outcomes = append(resp.Outcomes, vo)
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		log.Printf("scrutinizerd: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
