package main

// The versioned /v1 surface: the multi-tenant resource API over
// scrutinizer.Service. Three resources mirror the library split:
//
//   - Corpora: named relational data sets. Created empty (or seeded from
//     inline CSV) and populated by PUT-ing relations as raw CSV bodies.
//     A corpus is mutable only until its first verifier exists; after
//     that relations are frozen, which is what makes lock-free sharing
//     with concurrent verification safe.
//   - Verifiers: trained model bundles over a corpus. Training fits the
//     feature pipeline once on the posted document and bootstraps the
//     classifiers from its annotations; every run then reuses that state.
//   - Runs: one document verification against a verifier. mode "batch"
//     answers every question with the simulated crowd in-process and
//     returns the report inline; mode "session" parks an interactive
//     session and returns its handle — the run ID is a session ID served
//     under /v1/runs/{id} (and, equivalently, the legacy /sessions/{id}).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/repro/scrutinizer"
)

// corpusCreateRequest is the POST /v1/corpora body. Relations may be
// seeded inline or uploaded afterwards via PUT
// /v1/corpora/{id}/relations/{name}.
type corpusCreateRequest struct {
	// ID names the corpus; empty mints "c1", "c2", ...
	ID string `json:"id"`
	// Relations optionally seeds the corpus: each entry is one relation
	// as CSV (first column is the key attribute).
	Relations []struct {
		Name string `json:"name"`
		CSV  string `json:"csv"`
	} `json:"relations"`
}

func (s *server) handleCorpusCreate(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req corpusCreateRequest
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
	}
	corpus := scrutinizer.NewCorpus()
	for _, rel := range req.Relations {
		parsed, err := scrutinizer.ReadRelationCSV(rel.Name, bytes.NewReader([]byte(rel.CSV)))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf("relation %q: %v", rel.Name, err))
			return
		}
		if err := corpus.Add(parsed); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	}
	id, err := s.svc.AddCorpus(req.ID, corpus)
	if err != nil {
		status := http.StatusBadRequest
		if _, taken := s.svc.Corpus(req.ID); taken {
			status = http.StatusConflict
		}
		httpError(w, status, err.Error())
		return
	}
	info, _ := s.svc.CorpusInfo(id)
	writeJSON(w, http.StatusCreated, info)
}

func (s *server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"corpora": s.svc.Corpora()})
}

func (s *server) handleCorpusGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.svc.CorpusInfo(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no corpus %q", id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleCorpusDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == defaultCorpusID {
		httpError(w, http.StatusConflict, "the default corpus backs the legacy routes and cannot be deleted")
		return
	}
	ok, err := s.svc.RemoveCorpus(id)
	if err != nil {
		httpError(w, journalStatus(err), err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no corpus %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// journalStatus maps a mutation error to its HTTP status: a failed journal
// append means the service cannot durably accept writes right now (503);
// anything else is the client's fault.
func journalStatus(err error) int {
	if errors.Is(err, scrutinizer.ErrJournal) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, scrutinizer.ErrNoCorpus) {
		return http.StatusNotFound
	}
	return http.StatusUnprocessableEntity
}

// mutableCorpus resolves a corpus for mutation, enforcing the freeze
// rules: the default corpus is never mutable over HTTP (legacy traffic
// reads it without coordination), and a corpus with verifiers is frozen
// (their runs read it concurrently). Caller must hold the corpus's
// lockCorpus mutex.
func (s *server) mutableCorpus(w http.ResponseWriter, id string) (*scrutinizer.Corpus, bool) {
	if id == defaultCorpusID {
		httpError(w, http.StatusConflict, "the default corpus is read-only (legacy routes verify against it without coordination)")
		return nil, false
	}
	corpus, ok := s.svc.Corpus(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no corpus %q", id))
		return nil, false
	}
	for _, vi := range s.svc.Verifiers() {
		if vi.CorpusID == id {
			httpError(w, http.StatusConflict, fmt.Sprintf(
				"corpus %q is frozen: verifier %q is trained over it (delete the verifiers to mutate relations)", id, vi.ID))
			return nil, false
		}
	}
	return corpus, true
}

func (s *server) handleRelationPut(w http.ResponseWriter, r *http.Request) {
	mu := s.lockCorpus(r.PathValue("id"))
	mu.Lock()
	defer mu.Unlock()
	if _, ok := s.mutableCorpus(w, r.PathValue("id")); !ok {
		return
	}
	name := r.PathValue("name")
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	rel, err := scrutinizer.ReadRelationCSV(name, bytes.NewReader(raw))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	// PUT semantics: replace an existing relation of the same name. The
	// service journals the upload before acknowledging it.
	replaced, err := s.svc.PutRelation(r.PathValue("id"), rel)
	if err != nil {
		httpError(w, journalStatus(err), err.Error())
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"relation": name,
		"rows":     rel.NumRows(),
		"attrs":    rel.NumAttrs(),
		"replaced": replaced,
	})
}

func (s *server) handleRelationDelete(w http.ResponseWriter, r *http.Request) {
	mu := s.lockCorpus(r.PathValue("id"))
	mu.Lock()
	defer mu.Unlock()
	if _, ok := s.mutableCorpus(w, r.PathValue("id")); !ok {
		return
	}
	name := r.PathValue("name")
	existed, err := s.svc.DropRelation(r.PathValue("id"), name)
	if err != nil {
		httpError(w, journalStatus(err), err.Error())
		return
	}
	if !existed {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no relation %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// verifierCreateRequest is the POST /v1/corpora/{id}/verifiers body: the
// training document (annotated claims become the classifier bootstrap)
// plus model options. A bare document body is accepted too.
type verifierCreateRequest struct {
	Training     json.RawMessage `json:"training"`
	Seed         int64           `json:"seed"`
	Tolerance    float64         `json:"tolerance"`
	TopK         int             `json:"topk"`
	EmbeddingDim int             `json:"embedding_dim"`
}

// verifierResponse enriches the registry info with the training
// document's feature coverage (trivially full) for symmetry with runs.
type verifierResponse struct {
	scrutinizer.VerifierInfo
	TrainingClaims int `json:"training_claims"`
}

func (s *server) handleVerifierCreate(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.admit(w)
	if !ok {
		return
	}
	defer leave()
	corpusID := r.PathValue("id")
	if _, ok := s.svc.Corpus(corpusID); !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no corpus %q", corpusID))
		return
	}
	// Training is charged to the corpus being trained over.
	if !s.rateLimit(w, corpusID) {
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req verifierCreateRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	doc, err := readDocument(raw, req.Training)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Serialize against relation uploads on this corpus only — other
	// tenants' mutations and trainings proceed in parallel — so a
	// verifier cannot be trained mid-mutation (after this, the corpus is
	// frozen).
	mu := s.lockCorpus(corpusID)
	mu.Lock()
	v, err := s.svc.CreateVerifier(corpusID, doc, scrutinizer.Options{
		Seed:         req.Seed,
		Tolerance:    req.Tolerance,
		TopK:         req.TopK,
		EmbeddingDim: req.EmbeddingDim,
	})
	mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, verifierResponse{
		VerifierInfo:   v.Info(),
		TrainingClaims: len(doc.Claims),
	})
}

func (s *server) handleVerifierList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"verifiers": s.svc.Verifiers()})
}

// verifier resolves the handler's verifier or writes the 404.
func (s *server) verifier(w http.ResponseWriter, r *http.Request) (*scrutinizer.Verifier, bool) {
	id := r.PathValue("id")
	v, ok := s.svc.Verifier(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no verifier %q", id))
		return nil, false
	}
	return v, true
}

func (s *server) handleVerifierGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.verifier(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, v.Info())
}

func (s *server) handleVerifierDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := s.svc.RemoveVerifier(r.PathValue("id"))
	if err != nil {
		httpError(w, journalStatus(err), err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no such verifier")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// runRequest is the POST /v1/verifiers/{id}/runs body: the shared
// document envelope plus the run mode. The envelope's seed field only
// drives the "random" claim ordering — model and crowd seeding belong
// to the verifier.
type runRequest struct {
	documentRequest
	// Mode is "batch" (default: simulated crowd, report inline) or
	// "session" (interactive: park a question/answer session).
	Mode string `json:"mode"`
}

// coverageJSON shapes FeatureCoverage for responses.
type coverageJSON struct {
	EmbedRatio float64 `json:"embed_ratio"`
	TFIDFRatio float64 `json:"tfidf_ratio"`
}

// batchRunResponse is the mode=batch report: the legacy verify payload
// plus run provenance (verifier, model generation, vocabulary coverage).
type batchRunResponse struct {
	verifyResponse
	Verifier        string       `json:"verifier"`
	Mode            string       `json:"mode"`
	ModelGeneration uint64       `json:"model_generation"`
	Coverage        coverageJSON `json:"coverage"`
}

// sessionRunResponse is the mode=session handle: the session payload
// plus run provenance and the /v1 links to drive it.
type sessionRunResponse struct {
	sessionCreateResponse
	Verifier string            `json:"verifier"`
	Mode     string            `json:"mode"`
	Coverage coverageJSON      `json:"coverage"`
	Links    map[string]string `json:"links"`
}

func (s *server) handleRunCreate(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.admit(w)
	if !ok {
		return
	}
	defer leave()
	v, ok := s.verifier(w, r)
	if !ok {
		return
	}
	// Runs are charged to the verifier they execute against — the /v1
	// surface's tenant unit.
	if !s.rateLimit(w, v.ID()) {
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req runRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	doc, err := readDocument(raw, req.Document)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Semantic document problems (no claims, bad section indexes) are the
	// client's fault in either mode; surface them as 422 up front rather
	// than letting session mode blame server capacity.
	if err := doc.Validate(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if len(doc.Claims) == 0 {
		httpError(w, http.StatusUnprocessableEntity, "document has no claims")
		return
	}
	ordering, err := parseOrdering(req.Ordering)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	parallelism := req.Parallelism
	if parallelism <= 0 {
		parallelism = s.parallel
	}
	vopts := scrutinizer.VerifyOptions{
		BatchSize:       req.Batch,
		SectionReadCost: req.SectionReadCost,
		Ordering:        ordering,
		Parallelism:     parallelism,
		Seed:            req.Seed,
	}
	cov := v.Coverage(doc)
	covJSON := coverageJSON{EmbedRatio: cov.EmbedRatio(), TFIDFRatio: cov.TFIDFRatio()}

	switch req.Mode {
	case "", "batch":
		for _, c := range doc.Claims {
			if c.Truth == nil {
				httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf(
					"claim %d has no ground-truth annotation; batch runs answer from the simulated crowd (use mode \"session\" for human answers)", c.ID))
				return
			}
		}
		team := req.Team
		if team <= 0 {
			team = 3
		}
		// Batch runs hold a quota slot for the whole request.
		release, ok := s.acquireRun(w, v.ID())
		if !ok {
			return
		}
		defer release()
		ctx, cancel := s.runCtx(r)
		defer cancel()
		start := time.Now()
		run, err := v.StartRun(ctx, doc)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		crowd, err := v.NewTeam(team)
		if err != nil {
			run.Close()
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		res, err := run.Verify(ctx, crowd, vopts)
		// Batch runs are request-scoped: hand the engine back to the
		// verifier's spare pool so the next request re-primes it in place.
		run.Close()
		if err != nil {
			httpError(w, verifyErrStatus(err), err.Error())
			return
		}
		resp := batchRunResponse{
			verifyResponse: verifyResponse{
				Title:       doc.Title,
				Claims:      len(doc.Claims),
				Accuracy:    res.Accuracy(),
				CrowdSecs:   res.Seconds,
				Batches:     res.Batches,
				Parallelism: parallelism,
				WallMillis:  time.Since(start).Milliseconds(),
			},
			Verifier:        v.ID(),
			Mode:            "batch",
			ModelGeneration: v.Generation(),
			Coverage:        covJSON,
		}
		for _, o := range res.Outcomes {
			vo := toVerifyOutcome(o)
			switch o.Verdict {
			case scrutinizer.VerdictCorrect:
				resp.Correct++
			case scrutinizer.VerdictIncorrect:
				resp.Incorrect++
			default:
				resp.Skipped++
			}
			resp.Outcomes = append(resp.Outcomes, vo)
		}
		writeJSON(w, http.StatusOK, resp)

	case "session":
		// Interactive runs count against the same per-tenant quota as
		// batch runs, but the slot is carried by the session registry's
		// owner tag (freed when the session ends), not held here.
		if !s.runQuotaFree(w, v.ID()) {
			return
		}
		ctx, cancel := s.runCtx(r)
		defer cancel()
		sess, err := v.StartSession(ctx, s.sessions, doc, scrutinizer.SessionOptions{
			Verify:   vopts,
			Checkers: req.Checkers,
		})
		if err != nil {
			// The document was validated above; what remains is registry
			// pressure (session cap reached) — a genuine 503 — or a dead
			// request context.
			status := http.StatusServiceUnavailable
			if errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			httpError(w, status, err.Error())
			return
		}
		id := sess.ID()
		writeJSON(w, http.StatusCreated, sessionRunResponse{
			sessionCreateResponse: sessionCreateResponse{
				ID:        id,
				Claims:    len(doc.Claims),
				Progress:  sess.Progress(),
				Questions: sess.Questions(),
			},
			Verifier: v.ID(),
			Mode:     "session",
			Coverage: covJSON,
			Links: map[string]string{
				"run":       "/v1/runs/" + id,
				"questions": "/v1/runs/" + id + "/questions",
				"answers":   "/v1/runs/" + id + "/answers",
				"report":    "/v1/runs/" + id + "/report",
			},
		})

	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown run mode %q (batch or session)", req.Mode))
	}
}
