package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/repro/scrutinizer"
)

// TestMetricsEndpoint is the subsystem-coverage integration test: after
// real traffic (a batch verify, a session with answers, journal appends),
// GET /metrics must serve valid exposition text with series from every
// serving layer — HTTP, guard, sessions, core + caches, and the store.
func TestMetricsEndpoint(t *testing.T) {
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 30
	cfg.NumSections = 3
	w, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(w.Corpus, serverConfig{parallel: 4, sessionTTL: time.Hour},
		scrutinizer.NewMemoryStore())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Traffic: one batch verify (runs, rounds, retrains, query cache,
	// feature memo) and one interactive session with a few answers.
	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(map[string]any{
		"document": json.RawMessage(doc.Bytes()),
		"batch":    10,
	})
	if resp, _ := postVerify(t, ts, payload); resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var created sessionCreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d", resp.StatusCode)
	}
	if len(created.Questions) > 0 {
		// Answer the first pending question; the best candidate option when
		// one is offered, a legitimate skip ("") otherwise.
		q := created.Questions[0]
		value := ""
		if len(q.Options) > 0 {
			value = q.Options[0].Value
		}
		ans, _ := json.Marshal(map[string]any{
			"claim_id": q.ClaimID, "value": value, "seconds": 1.0,
		})
		ar, err := http.Post(ts.URL+"/sessions/"+created.ID+"/answers", "application/json", bytes.NewReader(ans))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, ar.Body)
		ar.Body.Close()
		if ar.StatusCode != http.StatusOK {
			t.Fatalf("answer: status %d", ar.StatusCode)
		}
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Exposition validity: typed families, unique series, no stray lines.
	types := map[string]string{}
	series := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			t.Fatal("blank line in exposition output")
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line %q", line)
		default:
			sp := strings.LastIndex(line, " ")
			if sp < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			key := line[:sp]
			if series[key] {
				t.Fatalf("duplicate series %q", key)
			}
			series[key] = true
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suffix); ok && types[cut] == "histogram" {
					base = cut
				}
			}
			if _, ok := types[base]; !ok {
				t.Errorf("series %q has no TYPE line", name)
			}
		}
	}
	if len(series) < 20 {
		t.Errorf("only %d series exposed, want >= 20:\n%s", len(series), body)
	}

	// Subsystem coverage: at least one live sample from each layer.
	for _, want := range []string{
		`scrutinizer_http_requests_total{route="verify",code="200"} 1`, // HTTP
		"scrutinizer_http_inflight_requests 1",                         // this scrape itself
		"scrutinizer_admission_inflight",                               // guard
		"scrutinizer_guard_rejected_total",                             // guard (family)
		"scrutinizer_sessions_active 1",                                // sessions
		"scrutinizer_session_answers_total",                            // sessions
		"scrutinizer_runs_started_total",                               // core lifecycle
		"scrutinizer_run_rounds_total",                                 // core lifecycle
		`scrutinizer_querycache_hits_total{corpus="default"}`,          // core cache
		"scrutinizer_feature_memo_hits_total",                          // core cache
		"scrutinizer_store_appends_total",                              // store
		"scrutinizer_store_journal_records",                            // store
		"scrutinizer_go_goroutines",                                    // runtime
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}

	// Activity actually registered: the verify above must have counted at
	// least one run, round and retrain on the event-driven counters.
	for _, name := range []string{
		"scrutinizer_runs_started_total 0",
		"scrutinizer_run_rounds_total 0",
		"scrutinizer_model_retrains_total 0",
		"scrutinizer_store_appends_total 0",
	} {
		if strings.Contains(body, name+"\n") {
			t.Errorf("%s still zero after traffic", strings.TrimSuffix(name, " 0"))
		}
	}
}

// TestHealthzMatchesMetrics pins the one-source-of-truth satellite: the
// numbers /healthz reports must equal what the obs gauges hold after the
// same refresh.
func TestHealthzMatchesMetrics(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(map[string]any{"document": json.RawMessage(doc.Bytes())})
	resp, err := http.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d", resp.StatusCode)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var body struct {
		Sessions struct {
			Active       int    `json:"active"`
			CreatedTotal uint64 `json:"created_total"`
		} `json:"sessions"`
		Service struct {
			Corpora int `json:"corpora"`
		} `json:"service"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Sessions.Active != 1 || body.Sessions.CreatedTotal != 1 {
		t.Fatalf("healthz sessions = %+v", body.Sessions)
	}
	if got := s.metrics.sessionsActive.Value(); got != 1 {
		t.Errorf("sessions_active gauge = %v after healthz refresh, want 1", got)
	}
	if got := s.metrics.sessionsCreated.Value(); got != 1 {
		t.Errorf("sessions_created counter = %v, want 1", got)
	}
	if got := s.metrics.corpora.Value(); got != float64(body.Service.Corpora) {
		t.Errorf("corpora gauge = %v, healthz says %d", got, body.Service.Corpora)
	}
}

// TestMetricsDuringBoot: /metrics stays reachable (and the not_ready
// rejection counter counts walled API calls) before boot finishes.
func TestMetricsDuringBoot(t *testing.T) {
	s := newServerShell(serverConfig{parallel: 2, sessionTTL: time.Hour}, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	vr, err := http.Post(ts.URL+"/verify", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, vr.Body)
	vr.Body.Close()
	if vr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-boot verify status = %d, want 503", vr.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("pre-boot /metrics status = %d, want 200", mr.StatusCode)
	}
	raw, _ := io.ReadAll(mr.Body)
	if !strings.Contains(string(raw), `scrutinizer_guard_rejected_total{reason="not_ready"} 1`) {
		t.Errorf("not_ready rejection not counted:\n%s", raw)
	}
}
