package main

// The HTTP half of the crash-recovery harness: a daemon with a file-backed
// store is driven partway through a /v1 walkthrough, cut mid-journal-write
// by fault injection (leaving a torn frame on disk, the shape of a process
// dying inside Append), restarted over the same data directory, and the
// recovered walkthrough is finished and compared bit for bit against a
// server that never crashed.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/repro/scrutinizer"
)

// recoveryTestWorld keeps replay cheap: the crashed journal is replayed on
// every restart.
func recoveryTestWorld(t *testing.T) *scrutinizer.World {
	t.Helper()
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 16
	cfg.NumSections = 3
	w, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// storedServer builds a server over st (nil = ephemeral) and serves it.
func storedServer(t *testing.T, w *scrutinizer.World, st scrutinizer.Store) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(w.Corpus, serverConfig{parallel: 4, sessionTTL: time.Hour}, st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// halfDoc is the first half of the world document (the session under test).
func halfDoc(w *scrutinizer.World) *scrutinizer.Document {
	half := len(w.Document.Claims) / 2
	return &scrutinizer.Document{Title: "recovery run", Sections: w.Document.Sections,
		Claims: w.Document.Claims[:half]}
}

// createVerifier trains a verifier over the default corpus and returns its ID.
func createVerifier(t *testing.T, baseURL string, w *scrutinizer.World) string {
	t.Helper()
	resp := do(t, "POST", baseURL+"/v1/corpora/default/verifiers", docJSON(t, w.Document))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create verifier: status %d", resp.StatusCode)
	}
	var created verifierResponse
	decodeJSON(t, resp, &created)
	return created.ID
}

// startSessionRun parks a mode=session run and returns its ID.
func startSessionRun(t *testing.T, baseURL, verifierID string, doc *scrutinizer.Document) string {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"document": json.RawMessage(docJSON(t, doc)),
		"mode":     "session",
		"batch":    5,
	})
	resp := do(t, "POST", baseURL+"/v1/verifiers/"+verifierID+"/runs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start session run: status %d", resp.StatusCode)
	}
	var run sessionRunResponse
	decodeJSON(t, resp, &run)
	return run.ID
}

// pendingQuestions fetches the run's question queue.
func pendingQuestions(t *testing.T, baseURL, runID string) ([]scrutinizer.SessionQuestion, bool) {
	t.Helper()
	resp := do(t, "GET", baseURL+"/v1/runs/"+runID+"/questions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("questions: status %d", resp.StatusCode)
	}
	var qr struct {
		Questions []scrutinizer.SessionQuestion `json:"questions"`
		Done      bool                          `json:"done"`
	}
	decodeJSON(t, resp, &qr)
	return qr.Questions, qr.Done
}

// answerFirst posts the harness's fixed answer to the first pending
// question. Both the reference server and the crashed-then-recovered server
// answer every question with this same deterministic checker, which is what
// makes their final reports comparable bit for bit.
func answerFirst(t *testing.T, baseURL, runID string) {
	t.Helper()
	qs, done := pendingQuestions(t, baseURL, runID)
	if done || len(qs) == 0 {
		t.Fatal("no pending questions to answer")
	}
	body, _ := json.Marshal(map[string]any{
		"claim_id": qs[0].ClaimID, "value": "suggestion", "seconds": 2,
	})
	resp := do(t, "POST", baseURL+"/v1/runs/"+runID+"/answers", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// finishRun answers until the run reports done, then returns its report
// with the server-assigned ID blanked for cross-server comparison.
func finishRun(t *testing.T, baseURL, runID string) sessionReportResponse {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("run did not converge")
		}
		if _, done := pendingQuestions(t, baseURL, runID); done {
			break
		}
		answerFirst(t, baseURL, runID)
	}
	resp := do(t, "GET", baseURL+"/v1/runs/"+runID+"/report", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	var rep sessionReportResponse
	decodeJSON(t, resp, &rep)
	rep.ID = ""
	return rep
}

// TestRecoveryCrashMidWriteHTTP is the headline harness: walk the /v1 API
// partway (train a verifier, park an interactive run, post some answers),
// cut the store mid-append so the journal ends in a torn frame, restart the
// daemon over the same directory, and assert the recovered run finishes
// with a report bit-identical to an uninterrupted server's.
func TestRecoveryCrashMidWriteHTTP(t *testing.T) {
	w := recoveryTestWorld(t)
	doc := halfDoc(w)

	// Reference: a server that never crashes (ephemeral store is fine —
	// durability must not change behavior).
	_, refTS := storedServer(t, w, nil)
	refVID := createVerifier(t, refTS.URL, w)
	refRunID := startSessionRun(t, refTS.URL, refVID, doc)
	want := finishRun(t, refTS.URL, refRunID)

	// Crashing server: file store wrapped in fault injection. Journal
	// records: 1 default-corpus create, 2 verifier create, 3 session
	// create, 4-5 two answers — the sixth append dies mid-frame.
	dir := t.TempDir()
	fs, err := scrutinizer.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	faulty := scrutinizer.NewFaultyStore(fs, 5, true)
	_, crashTS := storedServer(t, w, faulty)
	vid := createVerifier(t, crashTS.URL, w)
	runID := startSessionRun(t, crashTS.URL, vid, doc)
	answers := 0
	for !faulty.Tripped() {
		if answers > 100 {
			t.Fatal("fault injector never tripped")
		}
		answerFirst(t, crashTS.URL, runID)
		answers++
	}
	if answers < 3 {
		t.Fatalf("cut too early: %d answers posted", answers)
	}

	// "Crash": abandon the live server, close the journal handle, reopen
	// the directory. The torn frame left by the injected mid-write cut
	// must be detected and truncated.
	crashTS.Close()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := scrutinizer.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if st := fs2.Stats(); !st.TornTailRecovered || st.Records != 5 {
		t.Fatalf("reopened store should truncate the torn sixth record: %+v", st)
	}

	s2, ts2 := storedServer(t, w, fs2)
	if s2.recovered.Sessions != 1 || s2.recovered.Verifiers != 1 || s2.recovered.Corpora != 1 {
		t.Fatalf("recovery stats: %+v", s2.recovered)
	}

	// The run survived the crash under its original ID and finishes with
	// the uninterrupted server's exact report. (The answer that died
	// mid-journal-write is replayed by the harness like any other — both
	// sides answer every question identically, so the lost write only
	// rewinds progress, never changes the outcome.)
	if resp := do(t, "GET", ts2.URL+"/v1/runs/"+runID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered run not found: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	got := finishRun(t, ts2.URL, runID)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered report diverged:\n  got  %+v\n  want %+v", got, want)
	}

	// /healthz on the recovered daemon serves the store and recovery
	// stats for operators.
	resp := do(t, "GET", ts2.URL+"/healthz", nil)
	var health struct {
		Store struct {
			Backend struct {
				Backend string `json:"backend"`
				Records uint64 `json:"journal_records"`
			} `json:"backend"`
			Recovered scrutinizer.RecoveryStats `json:"recovered"`
		} `json:"store"`
	}
	decodeJSON(t, resp, &health)
	if health.Store.Backend.Backend != "file" || health.Store.Recovered.Sessions != 1 {
		t.Fatalf("healthz store section = %+v", health.Store)
	}
	if health.Store.Backend.Records < 5 {
		t.Fatalf("finishing the run should have journaled more answers: %+v", health.Store.Backend)
	}
}

// TestRecoveryCorpusDeleteLeavesNoOrphans: DELETE /v1/corpora/{id} cascades
// into the persistence layer — the dropped verifiers' model snapshots are
// deleted and a restart materializes nothing of the corpus, its relations
// or its verifiers.
func TestRecoveryCorpusDeleteLeavesNoOrphans(t *testing.T) {
	w := recoveryTestWorld(t)
	mem := scrutinizer.NewMemoryStore()
	_, ts := storedServer(t, w, mem)

	names := w.Corpus.Names()
	body, _ := json.Marshal(map[string]any{
		"id": "tmp",
		"relations": []map[string]string{
			{"name": names[0], "csv": string(relationCSV(t, w.Corpus, names[0]))},
		},
	})
	if resp := do(t, "POST", ts.URL+"/v1/corpora", body); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create corpus: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := do(t, "PUT", ts.URL+"/v1/corpora/tmp/relations/"+names[1],
		relationCSV(t, w.Corpus, names[1])); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload relation: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp := do(t, "POST", ts.URL+"/v1/corpora/tmp/verifiers", docJSON(t, w.Document))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create verifier: status %d", resp.StatusCode)
	}
	var created verifierResponse
	decodeJSON(t, resp, &created)
	if mem.Stats().Snapshots != 1 {
		t.Fatalf("verifier creation should park one model snapshot: %+v", mem.Stats())
	}

	if resp := do(t, "DELETE", ts.URL+"/v1/corpora/tmp", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete corpus: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if st := mem.Stats(); st.Snapshots != 0 {
		t.Fatalf("cascade left an orphaned snapshot: %+v", st)
	}

	// A restart over the same store materializes only the default corpus:
	// the tmp corpus, its relations and its verifier are all tombstoned.
	s2, ts2 := storedServer(t, w, mem)
	if s2.recovered.Corpora != 1 || s2.recovered.Verifiers != 0 {
		t.Fatalf("delete cascade resurrected state: %+v", s2.recovered)
	}
	if resp := do(t, "GET", ts2.URL+"/v1/corpora/tmp", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tmp corpus survived restart: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := do(t, "GET", ts2.URL+"/v1/verifiers/"+created.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("verifier %s survived restart: status %d", created.ID, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestRecoveryVerifierDeletePersisted: DELETE /v1/verifiers/{id} removes
// the model snapshot and the verifier stays gone across a restart.
func TestRecoveryVerifierDeletePersisted(t *testing.T) {
	w := recoveryTestWorld(t)
	mem := scrutinizer.NewMemoryStore()
	_, ts := storedServer(t, w, mem)

	vid := createVerifier(t, ts.URL, w)
	if mem.Stats().Snapshots != 1 {
		t.Fatalf("expected one parked snapshot: %+v", mem.Stats())
	}
	if resp := do(t, "DELETE", ts.URL+"/v1/verifiers/"+vid, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete verifier: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if st := mem.Stats(); st.Snapshots != 0 {
		t.Fatalf("delete left an orphaned snapshot: %+v", st)
	}

	s2, _ := storedServer(t, w, mem)
	if s2.recovered.Verifiers != 0 {
		t.Fatalf("deleted verifier resurrected: %+v", s2.recovered)
	}
}
