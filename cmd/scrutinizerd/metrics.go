package main

// Daemon observability: one obs.Registry carries every serving-layer
// metric, exposed at GET /metrics in the Prometheus text format. Three
// instrumentation styles, matching how each layer already reports:
//
//   - Event-driven counters for things that happen to requests: the HTTP
//     middleware (withMetrics), the guard rejection paths and the core run
//     observer increment counters at event time.
//   - Scrape-time mirrors for totals a component already maintains in its
//     own atomics (gate shed count, session lifetime counters, query-cache
//     hits): refreshMetrics copies each component's Stats() snapshot into
//     registry instruments. /healthz and /readyz build their JSON from the
//     same snapshot, so the probes and /metrics can never disagree.
//   - The store is wrapped by store.Monitor (see newServerShell), which
//     times appends and replay at the call boundary.

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/feature"
	"github.com/repro/scrutinizer/internal/guard"
	"github.com/repro/scrutinizer/internal/obs"
	"github.com/repro/scrutinizer/internal/session"
	"github.com/repro/scrutinizer/internal/table"
)

// daemonMetrics bundles the registry and the instruments handlers touch
// directly; mirror gauges live only in refreshMetrics' closures.
type daemonMetrics struct {
	reg *obs.Registry

	// HTTP layer, maintained by withMetrics.
	httpRequests *obs.CounterVec   // route, code
	httpLatency  *obs.HistogramVec // route
	httpInflight *obs.Gauge

	// Guard layer: one counter per rejection path, incremented where the
	// 429/503 is written.
	rejected     *obs.CounterVec // reason
	drainSeconds *obs.Gauge

	// Core run lifecycle, driven by the core.Observer installed in
	// newServerShell.
	runsStarted    *obs.Counter
	runsCompleted  *obs.Counter
	runsCancelled  *obs.Counter
	rounds         *obs.Counter
	retrains       *obs.Counter
	batchScoreSize *obs.Histogram

	// Scrape-time mirrors refreshed from component stats.
	sessionsActive   *obs.Gauge
	sessionsPending  *obs.Gauge
	sessionsCreated  *obs.Counter
	sessionsEvicted  *obs.Counter
	sessionsAnswered *obs.Counter
	admissionIn      *obs.Gauge
	admissionShed    *obs.Counter
	corpora          *obs.Gauge
	verifiers        *obs.Gauge
	verifierRuns     *obs.Counter
	qcacheHits       *obs.CounterVec // corpus
	qcacheMisses     *obs.CounterVec // corpus
	qcacheEntries    *obs.GaugeVec   // corpus
	memoHits         *obs.Counter
	memoMisses       *obs.Counter
}

// newDaemonMetrics builds the registry and registers every instrument.
// Runtime basics (goroutines, heap) are Func metrics read at scrape time.
func newDaemonMetrics(started time.Time) *daemonMetrics {
	reg := obs.NewRegistry()
	m := &daemonMetrics{
		reg: reg,
		httpRequests: reg.NewCounterVec("scrutinizer_http_requests_total",
			"HTTP requests served, by route class and status code.", "route", "code"),
		httpLatency: reg.NewHistogramVec("scrutinizer_http_request_seconds",
			"HTTP request latency by route class.", obs.DefLatencyBuckets, "route"),
		httpInflight: reg.NewGauge("scrutinizer_http_inflight_requests",
			"HTTP requests currently being served."),
		rejected: reg.NewCounterVec("scrutinizer_guard_rejected_total",
			"Requests rejected by tenant protection, by reason (rate_limit, run_quota, gate_shed, not_ready).", "reason"),
		drainSeconds: reg.NewGauge("scrutinizer_shutdown_drain_seconds",
			"Duration of the admission-gate drain during the last shutdown."),
		runsStarted: reg.NewCounter("scrutinizer_runs_started_total",
			"Verification runs started (batch and interactive)."),
		runsCompleted: reg.NewCounter("scrutinizer_runs_completed_total",
			"Verification runs that resolved every claim."),
		runsCancelled: reg.NewCounter("scrutinizer_runs_cancelled_total",
			"Synchronous verification runs stopped by cancellation or timeout."),
		rounds: reg.NewCounter("scrutinizer_run_rounds_total",
			"Batch-selection rounds executed (Algorithm 1 OptBatch)."),
		retrains: reg.NewCounter("scrutinizer_model_retrains_total",
			"Classifier retrains at batch barriers."),
		batchScoreSize: reg.NewHistogram("scrutinizer_batch_scored_claims",
			"Stale claims featurized and scored per batch-scoring round.",
			obs.ExpBuckets(1, 2, 12)),
		sessionsActive: reg.NewGauge("scrutinizer_sessions_active",
			"Live interactive sessions."),
		sessionsPending: reg.NewGauge("scrutinizer_sessions_pending_questions",
			"Queued questions across live sessions."),
		sessionsCreated: reg.NewCounter("scrutinizer_sessions_created_total",
			"Sessions created since process start."),
		sessionsEvicted: reg.NewCounter("scrutinizer_sessions_evicted_total",
			"Sessions evicted by the idle TTL."),
		sessionsAnswered: reg.NewCounter("scrutinizer_session_answers_total",
			"Answers accepted by live sessions (excluding recovery replay)."),
		admissionIn: reg.NewGauge("scrutinizer_admission_inflight",
			"Expensive requests inside the global admission gate."),
		admissionShed: reg.NewCounter("scrutinizer_admission_shed_total",
			"Requests shed by the global admission gate since process start."),
		corpora: reg.NewGauge("scrutinizer_corpora",
			"Registered corpora."),
		verifiers: reg.NewGauge("scrutinizer_verifiers",
			"Registered (trained) verifiers."),
		verifierRuns: reg.NewCounter("scrutinizer_verifier_runs_started_total",
			"Runs started across all registered verifiers."),
		qcacheHits: reg.NewCounterVec("scrutinizer_querycache_hits_total",
			"Tentative-execution query cache hits, by corpus.", "corpus"),
		qcacheMisses: reg.NewCounterVec("scrutinizer_querycache_misses_total",
			"Tentative-execution query cache misses, by corpus.", "corpus"),
		qcacheEntries: reg.NewGaugeVec("scrutinizer_querycache_entries",
			"Memoized (formula, context) pairs in the query cache, by corpus.", "corpus"),
		memoHits: reg.NewCounter("scrutinizer_feature_memo_hits_total",
			"Feature-vector memo hits (process-wide)."),
		memoMisses: reg.NewCounter("scrutinizer_feature_memo_misses_total",
			"Feature-vector memo misses (process-wide)."),
	}
	reg.NewGaugeFunc("scrutinizer_go_goroutines",
		"Live goroutines.", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewGaugeFunc("scrutinizer_go_heap_alloc_bytes",
		"Heap bytes allocated and still in use.", func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.NewGaugeFunc("scrutinizer_uptime_seconds",
		"Seconds since process start.", func() float64 { return time.Since(started).Seconds() })
	reg.NewGaugeVec("scrutinizer_build_info",
		"Build metadata; value is always 1.", "version").With(buildVersion()).Set(1)
	return m
}

// observer wires the core run-lifecycle hooks into the counters. Installed
// process-wide in newServerShell.
func (m *daemonMetrics) observer() *core.Observer {
	return &core.Observer{
		RunStarted:   m.runsStarted.Inc,
		RunCompleted: m.runsCompleted.Inc,
		RunCancelled: m.runsCancelled.Inc,
		Round:        m.rounds.Inc,
		Retrain:      m.retrains.Inc,
		BatchScored:  func(n int) { m.batchScoreSize.Observe(float64(n)) },
	}
}

// statsSnapshot is one consistent gather of every component's stats — the
// single source both /metrics (via the scrape hook) and the health probes
// render from.
type statsSnapshot struct {
	corpus    table.Stats
	index     table.IndexStats
	sess      session.Stats
	qc        scrutinizer.QueryCacheStats
	svc       scrutinizer.ServiceStats
	corpora   []scrutinizer.CorpusInfo
	verifiers []scrutinizer.VerifierInfo
	gate      guard.GateStats
	store     scrutinizer.StoreStats
	hasStore  bool
}

// refreshMetrics gathers every component's stats, mirrors them into the
// registry, and returns the snapshot for probe handlers. Safe before boot
// completes: registry-dependent sections are skipped until ready.
func (s *server) refreshMetrics() statsSnapshot {
	snap := statsSnapshot{
		sess: s.sessions.Stats(),
		gate: s.gate.Stats(),
	}
	m := s.metrics
	m.sessionsActive.Set(float64(snap.sess.Active))
	m.sessionsPending.Set(float64(snap.sess.PendingQuestions))
	m.sessionsCreated.Set(float64(snap.sess.CreatedTotal))
	m.sessionsEvicted.Set(float64(snap.sess.EvictedTotal))
	m.sessionsAnswered.Set(float64(snap.sess.AnsweredTotal))
	m.admissionIn.Set(float64(snap.gate.InFlight))
	m.admissionShed.Set(float64(snap.gate.Shed))
	hits, misses := feature.MemoStats()
	m.memoHits.Set(float64(hits))
	m.memoMisses.Set(float64(misses))
	if !s.ready.Load() {
		return snap
	}
	snap.corpus = s.corpus.Stats()
	snap.index = s.corpus.Index().Stats()
	snap.qc = s.qcache.Stats()
	snap.svc = s.svc.Stats()
	snap.corpora = s.svc.Corpora()
	snap.verifiers = s.svc.Verifiers()
	snap.store, snap.hasStore = s.svc.StoreStats()
	m.corpora.Set(float64(snap.svc.Corpora))
	m.verifiers.Set(float64(snap.svc.Verifiers))
	m.verifierRuns.Set(float64(snap.svc.Runs))
	for _, ci := range snap.corpora {
		m.qcacheHits.With(ci.ID).Set(float64(ci.Cache.Hits))
		m.qcacheMisses.With(ci.ID).Set(float64(ci.Cache.Misses))
		m.qcacheEntries.With(ci.ID).Set(float64(ci.Cache.Entries))
	}
	return snap
}

// routeClass maps a request path to a fixed, low-cardinality route label.
// Path parameters (session IDs, corpus IDs) never reach a label.
func routeClass(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	case path == "/metrics":
		return "metrics"
	case path == "/verify":
		return "verify"
	case path == "/sessions" || strings.HasPrefix(path, "/sessions/"):
		return "sessions"
	case path == "/v1/corpora" || strings.HasPrefix(path, "/v1/corpora/"):
		return "v1/corpora"
	case path == "/v1/verifiers" || strings.HasPrefix(path, "/v1/verifiers/"):
		return "v1/verifiers"
	case strings.HasPrefix(path, "/v1/runs/"):
		return "v1/runs"
	}
	return "other"
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// withMetrics is the outermost middleware: it wraps even the panic
// recoverer so a recovered 500 is counted and timed like any response.
func (s *server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.metrics
		route := routeClass(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		m.httpInflight.Inc()
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		m.httpLatency.With(route).Observe(elapsed.Seconds())
		m.httpRequests.With(route, strconv.Itoa(sw.status)).Inc()
		m.httpInflight.Dec()
		daemonLog.Debug("request",
			"method", r.Method, "route", route, "code", sw.status,
			"ms", elapsed.Milliseconds())
	})
}
