package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/repro/scrutinizer"
)

// docJSON marshals a document for request bodies.
func docJSON(t *testing.T, doc *scrutinizer.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// relationCSV renders one of the world corpus's relations as CSV.
func relationCSV(t *testing.T, corpus *scrutinizer.Corpus, name string) []byte {
	t.Helper()
	rel, err := corpus.Relation(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestV1CorpusLifecycle(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	relName := w.Corpus.Names()[0]
	csv := relationCSV(t, w.Corpus, relName)

	// Create a corpus seeded with one inline relation.
	body, _ := json.Marshal(map[string]any{
		"id": "iea",
		"relations": []map[string]string{
			{"name": relName, "csv": string(csv)},
		},
	})
	resp := do(t, "POST", ts.URL+"/v1/corpora", body)
	var created scrutinizer.CorpusInfo
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create corpus: status %d", resp.StatusCode)
	}
	decodeJSON(t, resp, &created)
	if created.ID != "iea" || created.Relations != 1 {
		t.Fatalf("created corpus = %+v", created)
	}

	// Duplicate id conflicts.
	if resp := do(t, "POST", ts.URL+"/v1/corpora", body); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate corpus: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Upload a second relation as a raw CSV body; re-upload replaces it.
	rel2 := w.Corpus.Names()[1]
	csv2 := relationCSV(t, w.Corpus, rel2)
	if resp := do(t, "PUT", ts.URL+"/v1/corpora/iea/relations/"+rel2, csv2); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload relation: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp = do(t, "PUT", ts.URL+"/v1/corpora/iea/relations/"+rel2, csv2)
	var put struct {
		Replaced bool `json:"replaced"`
		Rows     int  `json:"rows"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace relation: status %d", resp.StatusCode)
	}
	decodeJSON(t, resp, &put)
	if !put.Replaced || put.Rows == 0 {
		t.Fatalf("replace relation = %+v", put)
	}

	// Listing and GET see both relations.
	resp = do(t, "GET", ts.URL+"/v1/corpora/iea", nil)
	var got scrutinizer.CorpusInfo
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get corpus: status %d", resp.StatusCode)
	}
	decodeJSON(t, resp, &got)
	if got.Relations != 2 {
		t.Fatalf("corpus after uploads = %+v", got)
	}
	resp = do(t, "GET", ts.URL+"/v1/corpora", nil)
	var list struct {
		Corpora []scrutinizer.CorpusInfo `json:"corpora"`
	}
	decodeJSON(t, resp, &list)
	if len(list.Corpora) != 2 { // default + iea
		t.Fatalf("corpora list = %+v", list.Corpora)
	}

	// Deleting a relation works while the corpus has no verifiers.
	if resp := do(t, "DELETE", ts.URL+"/v1/corpora/iea/relations/"+rel2, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete relation: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Training a verifier freezes the corpus.
	resp = do(t, "POST", ts.URL+"/v1/corpora/iea/verifiers", docJSON(t, w.Document))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create verifier: status %d", resp.StatusCode)
	}
	var vinfo scrutinizer.VerifierInfo
	decodeJSON(t, resp, &vinfo)
	if resp := do(t, "PUT", ts.URL+"/v1/corpora/iea/relations/extra", csv); resp.StatusCode != http.StatusConflict {
		t.Fatalf("upload to frozen corpus: status %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// The default corpus is protected.
	for _, req := range [][2]string{
		{"DELETE", "/v1/corpora/default"},
		{"PUT", "/v1/corpora/default/relations/x"},
	} {
		if resp := do(t, req[0], ts.URL+req[1], csv); resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s %s: status %d, want 409", req[0], req[1], resp.StatusCode)
		} else {
			resp.Body.Close()
		}
	}

	// Deleting the corpus cascades to its verifiers.
	if resp := do(t, "DELETE", ts.URL+"/v1/corpora/iea", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete corpus: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := do(t, "GET", ts.URL+"/v1/verifiers/"+vinfo.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("verifier survived corpus deletion: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// trainV1Verifier posts the document as training data for a verifier over
// the given corpus and returns its registry info.
func trainV1Verifier(t *testing.T, ts *httptest.Server, corpusID string, doc *scrutinizer.Document, seed int64) scrutinizer.VerifierInfo {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"training": json.RawMessage(docJSON(t, doc)),
		"seed":     seed,
	})
	resp := do(t, "POST", ts.URL+"/v1/corpora/"+corpusID+"/verifiers", body)
	if resp.StatusCode != http.StatusCreated {
		var e map[string]string
		decodeJSON(t, resp, &e)
		t.Fatalf("create verifier: status %d (%v)", resp.StatusCode, e)
	}
	var info scrutinizer.VerifierInfo
	decodeJSON(t, resp, &info)
	return info
}

func TestV1VerifierLifecycle(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	info := trainV1Verifier(t, ts, "default", w.Document, 11)
	if info.ID == "" || info.CorpusID != "default" || info.TrainedOn == 0 || info.Generation == 0 {
		t.Fatalf("verifier info = %+v", info)
	}

	resp := do(t, "GET", ts.URL+"/v1/verifiers/"+info.ID, nil)
	var got scrutinizer.VerifierInfo
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get verifier: status %d", resp.StatusCode)
	}
	decodeJSON(t, resp, &got)
	if got.ID != info.ID || got.FeatureDim == 0 {
		t.Fatalf("get verifier = %+v", got)
	}

	resp = do(t, "GET", ts.URL+"/v1/verifiers", nil)
	var list struct {
		Verifiers []scrutinizer.VerifierInfo `json:"verifiers"`
	}
	decodeJSON(t, resp, &list)
	if len(list.Verifiers) != 1 || list.Verifiers[0].ID != info.ID {
		t.Fatalf("verifier list = %+v", list.Verifiers)
	}

	if resp := do(t, "DELETE", ts.URL+"/v1/verifiers/"+info.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete verifier: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := do(t, "DELETE", ts.URL+"/v1/verifiers/"+info.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// postV1Run posts a run and decodes the batch response.
func postV1Run(t *testing.T, ts *httptest.Server, verifierID string, payload map[string]any) (*http.Response, batchRunResponse) {
	t.Helper()
	body, _ := json.Marshal(payload)
	resp := do(t, "POST", ts.URL+"/v1/verifiers/"+verifierID+"/runs", body)
	var out batchRunResponse
	if resp.StatusCode == http.StatusOK {
		decodeJSON(t, resp, &out)
	}
	return resp, out
}

// TestV1BatchRunMatchesSystem is the acceptance pin for the redesign: a
// trained verifier serving a document over /v1 produces verdicts
// bit-identical to a directly-constructed legacy System trained on the
// same data — and a second document served by the same warm verifier
// matches its own dedicated reference too.
func TestV1BatchRunMatchesSystem(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	const seed, batch = 11, 10
	info := trainV1Verifier(t, ts, "default", w.Document, seed)

	// Reference: the direct library path with the same training data.
	sys, err := scrutinizer.New(w.Corpus, w.Document, scrutinizer.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(w.Document.Claims); err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.VerifyDocument(context.Background(), team, scrutinizer.VerifyOptions{BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}

	resp, got := postV1Run(t, ts, info.ID, map[string]any{
		"document": json.RawMessage(docJSON(t, w.Document)),
		"batch":    batch,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	if got.Verifier != info.ID || got.Mode != "batch" || got.ModelGeneration == 0 {
		t.Fatalf("run provenance = %+v", got)
	}
	// TF-IDF coverage of the training document is full (MinDF 1); embed
	// coverage is near-full — words under the embedding's MinCount never
	// enter its vocabulary, by design.
	if got.Coverage.TFIDFRatio != 1 || got.Coverage.EmbedRatio < 0.8 {
		t.Fatalf("training-document coverage = %+v, want full tfidf + near-full embed", got.Coverage)
	}
	if got.CrowdSecs != want.Seconds || got.Batches != want.Batches || got.Accuracy != want.Accuracy() {
		t.Fatalf("run vs system: secs %v/%v batches %d/%d acc %v/%v",
			got.CrowdSecs, want.Seconds, got.Batches, want.Batches, got.Accuracy, want.Accuracy())
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("outcome counts %d vs %d", len(got.Outcomes), len(want.Outcomes))
	}
	for i, o := range want.Outcomes {
		gotO := got.Outcomes[i]
		if gotO.ClaimID != o.ClaimID || gotO.Verdict != o.Verdict.String() || gotO.Seconds != o.Seconds {
			t.Fatalf("outcome %d: %+v vs %+v", i, gotO, o)
		}
	}

	// Second document on the same warm verifier: bit-identical to a
	// dedicated System trained on the full document (the verifier's
	// training set) and run over the half.
	half := &scrutinizer.Document{Title: "half", Sections: w.Document.Sections,
		Claims: w.Document.Claims[:len(w.Document.Claims)/2]}
	resp2, got2 := postV1Run(t, ts, info.ID, map[string]any{
		"document": json.RawMessage(docJSON(t, half)),
		"batch":    batch,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("half run: status %d", resp2.StatusCode)
	}
	refV, err := scrutinizer.NewVerifier(w.Corpus, w.Document, scrutinizer.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	refRun, err := refV.StartRun(context.Background(), half)
	if err != nil {
		t.Fatal(err)
	}
	refTeam, err := refV.NewTeam(3)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := refRun.Verify(context.Background(), refTeam, scrutinizer.VerifyOptions{BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	if got2.CrowdSecs != want2.Seconds || len(got2.Outcomes) != len(want2.Outcomes) {
		t.Fatalf("half run: secs %v/%v outcomes %d/%d",
			got2.CrowdSecs, want2.Seconds, len(got2.Outcomes), len(want2.Outcomes))
	}
	for i, o := range want2.Outcomes {
		if got2.Outcomes[i].Verdict != o.Verdict.String() {
			t.Fatalf("half outcome %d verdict %q vs %q", i, got2.Outcomes[i].Verdict, o.Verdict)
		}
	}

	// The verifier recorded both runs.
	resp = do(t, "GET", ts.URL+"/v1/verifiers/"+info.ID, nil)
	var after scrutinizer.VerifierInfo
	decodeJSON(t, resp, &after)
	if after.Runs != 2 {
		t.Fatalf("runs recorded = %d, want 2", after.Runs)
	}
}

// TestV1SessionRunMatchesBatch drives an interactive /v1 run with the
// simulated crowd and pins its report to the batch run of the same
// verifier: same verdicts, same crowd seconds.
func TestV1SessionRunMatchesBatch(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	const seed, batch = 11, 10
	info := trainV1Verifier(t, ts, "default", w.Document, seed)

	respBatch, batchOut := postV1Run(t, ts, info.ID, map[string]any{
		"document": json.RawMessage(docJSON(t, w.Document)),
		"batch":    batch,
	})
	if respBatch.StatusCode != http.StatusOK {
		t.Fatalf("batch run: status %d", respBatch.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{
		"document": json.RawMessage(docJSON(t, w.Document)),
		"mode":     "session",
		"batch":    batch,
		"checkers": 3,
	})
	resp := do(t, "POST", ts.URL+"/v1/verifiers/"+info.ID+"/runs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session run: status %d", resp.StatusCode)
	}
	var sessOut sessionRunResponse
	decodeJSON(t, resp, &sessOut)
	if sessOut.Mode != "session" || sessOut.Verifier != info.ID || sessOut.Links["report"] == "" {
		t.Fatalf("session run = %+v", sessOut)
	}

	// Answer everything through the /v1/runs links with the simulated
	// crowd (cost model and truth resolution identical to the batch path).
	sc := newSessionCrowd(t, w.Corpus, w.Document, seed, 3)
	questions := sessOut.Questions
	for rounds := 0; len(questions) > 0; rounds++ {
		if rounds > 10000 {
			t.Fatal("session did not converge")
		}
		answers := make([]scrutinizer.SessionAnswer, 0, len(questions))
		for _, q := range questions {
			answers = append(answers, sc.answer(q))
		}
		body, _ := json.Marshal(map[string]any{"answers": answers})
		resp := do(t, "POST", ts.URL+sessOut.Links["answers"], body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answers: status %d", resp.StatusCode)
		}
		var ar answersResponse
		decodeJSON(t, resp, &ar)
		if len(ar.Questions) > 0 {
			questions = ar.Questions
			continue
		}
		resp = do(t, "GET", ts.URL+sessOut.Links["questions"], nil)
		var qs struct {
			Questions []scrutinizer.SessionQuestion `json:"questions"`
			Done      bool                          `json:"done"`
		}
		decodeJSON(t, resp, &qs)
		if qs.Done {
			break
		}
		questions = qs.Questions
	}

	resp = do(t, "GET", ts.URL+sessOut.Links["report"], nil)
	var rep sessionReportResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	decodeJSON(t, resp, &rep)
	if !rep.Done {
		t.Fatal("session not done")
	}
	if rep.Correct != batchOut.Correct || rep.Incorrect != batchOut.Incorrect || rep.Skipped != batchOut.Skipped {
		t.Fatalf("session verdicts %d/%d/%d vs batch %d/%d/%d",
			rep.Correct, rep.Incorrect, rep.Skipped, batchOut.Correct, batchOut.Incorrect, batchOut.Skipped)
	}
	if rep.CrowdSecs != batchOut.CrowdSecs || rep.Accuracy != batchOut.Accuracy {
		t.Fatalf("session secs/acc %v/%v vs batch %v/%v", rep.CrowdSecs, rep.Accuracy, batchOut.CrowdSecs, batchOut.Accuracy)
	}

	// The session is also reachable through the legacy alias.
	resp = do(t, "GET", ts.URL+"/sessions/"+sessOut.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy alias for v1 run: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	if resp := do(t, "DELETE", ts.URL+"/v1/runs/"+sessOut.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete run: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestV1ConcurrentRunsOneVerifier: concurrent batch runs against one
// verifier succeed and return identical reports (run under -race in CI).
func TestV1ConcurrentRunsOneVerifier(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	info := trainV1Verifier(t, ts, "default", w.Document, 7)
	payload := map[string]any{
		"document": json.RawMessage(docJSON(t, w.Document)),
		"batch":    10,
	}

	const n = 4
	outs := make([]batchRunResponse, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(payload)
			resp := do(t, "POST", ts.URL+"/v1/verifiers/"+info.ID+"/runs", body)
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				decodeJSON(t, resp, &outs[i])
			} else {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("run %d: status %d", i, codes[i])
		}
	}
	for i := 1; i < n; i++ {
		if outs[i].CrowdSecs != outs[0].CrowdSecs || outs[i].Correct != outs[0].Correct ||
			outs[i].Incorrect != outs[0].Incorrect || outs[i].Skipped != outs[0].Skipped {
			t.Fatalf("concurrent run %d diverged: %+v vs %+v", i, outs[i], outs[0])
		}
	}
}

func TestV1RejectsBadInput(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	info := trainV1Verifier(t, ts, "default", w.Document, 3)

	for _, tc := range []struct {
		name, method, path string
		body               []byte
		want               int
	}{
		{"corpus bad json", "POST", "/v1/corpora", []byte("{nope"), http.StatusBadRequest},
		{"corpus bad id", "POST", "/v1/corpora", []byte(`{"id": "bad id!"}`), http.StatusBadRequest},
		{"corpus bad csv", "POST", "/v1/corpora", []byte(`{"id": "x", "relations": [{"name": "r", "csv": "k,v\nx"}]}`), http.StatusUnprocessableEntity},
		{"verifier unknown corpus", "POST", "/v1/corpora/nope/verifiers", docJSON(t, w.Document), http.StatusNotFound},
		{"verifier bad json", "POST", "/v1/corpora/default/verifiers", []byte("{nope"), http.StatusBadRequest},
		{"verifier empty doc", "POST", "/v1/corpora/default/verifiers", []byte(`{}`), http.StatusUnprocessableEntity},
		{"run unknown verifier", "POST", "/v1/verifiers/v999/runs", docJSON(t, w.Document), http.StatusNotFound},
		{"run bad json", "POST", "/v1/verifiers/" + info.ID + "/runs", []byte("{nope"), http.StatusBadRequest},
		{"run bad mode", "POST", "/v1/verifiers/" + info.ID + "/runs", mustJSON(t, map[string]any{
			"document": json.RawMessage(docJSON(t, w.Document)), "mode": "teleport"}), http.StatusBadRequest},
		{"run bad ordering", "POST", "/v1/verifiers/" + info.ID + "/runs", mustJSON(t, map[string]any{
			"document": json.RawMessage(docJSON(t, w.Document)), "ordering": "alphabetical"}), http.StatusBadRequest},
		{"get unknown corpus", "GET", "/v1/corpora/nope", nil, http.StatusNotFound},
		{"get unknown verifier", "GET", "/v1/verifiers/nope", nil, http.StatusNotFound},
		{"get unknown run", "GET", "/v1/runs/nope", nil, http.StatusNotFound},
	} {
		resp := do(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}

	// Unannotated documents cannot run in batch mode (422 with a hint)...
	stripped := &scrutinizer.Document{Title: "t", Sections: w.Document.Sections}
	for _, c := range w.Document.Claims {
		cc := *c
		cc.Truth = nil
		stripped.Claims = append(stripped.Claims, &cc)
	}
	resp := do(t, "POST", ts.URL+"/v1/verifiers/"+info.ID+"/runs", docJSON(t, stripped))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unannotated batch run: status %d", resp.StatusCode)
	}
	var e map[string]string
	decodeJSON(t, resp, &e)
	if !strings.Contains(e["error"], "session") {
		t.Errorf("batch-run error should point at session mode: %q", e["error"])
	}

	// ...but they can run as interactive sessions.
	body := mustJSON(t, map[string]any{
		"document": json.RawMessage(docJSON(t, stripped)), "mode": "session"})
	resp = do(t, "POST", ts.URL+"/v1/verifiers/"+info.ID+"/runs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("unannotated session run: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHealthzServiceStats: /healthz surfaces the version, uptime and the
// per-corpus / per-verifier registry breakdown.
func TestHealthzServiceStats(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	info := trainV1Verifier(t, ts, "default", w.Document, 5)
	// Park one session so per-verifier session counts are visible.
	body := mustJSON(t, map[string]any{
		"document": json.RawMessage(docJSON(t, w.Document)), "mode": "session"})
	if resp := do(t, "POST", ts.URL+"/v1/verifiers/"+info.ID+"/runs", body); resp.StatusCode != http.StatusCreated {
		t.Fatalf("session run: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Uptime  *int   `json:"uptime_seconds"`
		Service struct {
			Corpora     int                       `json:"corpora"`
			Verifiers   int                       `json:"verifiers"`
			RunsStarted uint64                    `json:"runs_started"`
			PerCorpus   map[string]map[string]any `json:"per_corpus"`
			PerVerifier map[string]map[string]any `json:"per_verifier"`
		} `json:"service"`
		Sessions struct {
			Active  int            `json:"active"`
			ByOwner map[string]int `json:"by_owner"`
		} `json:"sessions"`
	}
	decodeJSON(t, resp, &h)
	if h.Status != "ok" || h.Version == "" || h.Uptime == nil {
		t.Fatalf("healthz basics = %+v", h)
	}
	if h.Service.Corpora != 1 || h.Service.Verifiers != 1 || h.Service.RunsStarted != 1 {
		t.Fatalf("service stats = %+v", h.Service)
	}
	if _, ok := h.Service.PerCorpus["default"]; !ok {
		t.Fatalf("per_corpus missing default: %+v", h.Service.PerCorpus)
	}
	pv, ok := h.Service.PerVerifier[info.ID]
	if !ok {
		t.Fatalf("per_verifier missing %s: %+v", info.ID, h.Service.PerVerifier)
	}
	if pv["active_sessions"] != float64(1) {
		t.Fatalf("per_verifier sessions = %v", pv["active_sessions"])
	}
	if h.Sessions.ByOwner[info.ID] != 1 {
		t.Fatalf("sessions by_owner = %v", h.Sessions.ByOwner)
	}
}
