package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/repro/scrutinizer"
)

func testServer(t *testing.T) (*server, *scrutinizer.World) {
	t.Helper()
	cfg := scrutinizer.SmallWorld()
	cfg.NumClaims = 30
	cfg.NumSections = 3
	w, err := scrutinizer.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(w.Corpus, serverConfig{parallel: 4, sessionTTL: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, w
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Status     string             `json:"status"`
		Corpus     map[string]int     `json:"corpus"`
		QueryCache map[string]float64 `json:"query_cache"`
		Interner   map[string]int     `json:"interner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Corpus["relations"] == 0 {
		t.Errorf("healthz body = %+v", body)
	}
	if _, ok := body.QueryCache["entries"]; !ok {
		t.Errorf("healthz missing query_cache stats: %+v", body.QueryCache)
	}
	if body.Interner["relations"] != body.Corpus["relations"] || body.Interner["cells"] == 0 {
		t.Errorf("healthz interner stats = %+v", body.Interner)
	}
}

// TestHealthzQueryCacheWarmsAcrossVerifies: the daemon shares one query
// cache across requests over its corpus, so repeated verifications of the
// same document must surface cache hits on /healthz.
func TestHealthzQueryCacheWarmsAcrossVerifies(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var buf bytes.Buffer
	if err := w.Document.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// A small batch forces mid-run retraining, so later batches carry
	// trained formula candidates into Algorithm 2 (a single cold-start
	// batch generates no queries at all).
	payload, err := json.Marshal(map[string]any{
		"document": json.RawMessage(buf.Bytes()),
		"batch":    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if resp, _ := postVerify(t, ts, payload); resp.StatusCode != http.StatusOK {
			t.Fatalf("verify %d: status %d", i, resp.StatusCode)
		}
	}
	if stats := s.qcache.Stats(); stats.Hits == 0 {
		t.Errorf("second verify produced no query-cache hits: %+v", stats)
	}
}

func postVerify(t *testing.T, ts *httptest.Server, payload []byte) (*http.Response, verifyResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/verify", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out verifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestVerifyEnvelope(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(map[string]any{
		"document":    json.RawMessage(doc.Bytes()),
		"team":        3,
		"batch":       10,
		"parallelism": 4,
		"seed":        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postVerify(t, ts, payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Claims != len(w.Document.Claims) || len(out.Outcomes) != out.Claims {
		t.Fatalf("claims = %d, outcomes = %d, want %d", out.Claims, len(out.Outcomes), len(w.Document.Claims))
	}
	if out.Correct+out.Incorrect+out.Skipped != out.Claims {
		t.Errorf("verdict counts %d+%d+%d != %d", out.Correct, out.Incorrect, out.Skipped, out.Claims)
	}
	if out.Accuracy < 0.9 {
		t.Errorf("accuracy = %g", out.Accuracy)
	}
	if out.CrowdSecs <= 0 || out.Batches == 0 || out.Parallelism != 4 {
		t.Errorf("report fields: %+v", out)
	}
}

func TestVerifyBareDocumentAndDeterminism(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	resp1, out1 := postVerify(t, ts, doc.Bytes())
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("bare document rejected: %d", resp1.StatusCode)
	}
	// Same request twice: identical crowd time and verdicts (the service
	// inherits the engine's determinism, whatever the fan-out).
	resp2, out2 := postVerify(t, ts, doc.Bytes())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d", resp2.StatusCode)
	}
	if out1.CrowdSecs != out2.CrowdSecs || out1.Correct != out2.Correct || out1.Incorrect != out2.Incorrect {
		t.Errorf("non-deterministic service: %+v vs %+v", out1, out2)
	}
}

func TestVerifyRejectsBadInput(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, tc := range []struct {
		name    string
		payload string
		want    int
	}{
		{"malformed", "{not json", http.StatusBadRequest},
		// {} parses as an empty document, which fails at System
		// construction: no claims to verify.
		{"empty object", "{}", http.StatusUnprocessableEntity},
		{"bad ordering", `{"document": {"title": "t", "sections": 1, "claims": []}, "ordering": "alphabetical"}`, http.StatusBadRequest},
	} {
		resp, _ := postVerify(t, ts, []byte(tc.payload))
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Unannotated claims are a 422: the simulated crowd has nothing to
	// answer from.
	stripped := *w.Document
	stripped.Claims = nil
	for _, c := range w.Document.Claims {
		cc := *c
		cc.Truth = nil
		stripped.Claims = append(stripped.Claims, &cc)
	}
	var doc bytes.Buffer
	if err := stripped.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	resp, _ := postVerify(t, ts, doc.Bytes())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unannotated document: status = %d, want 422", resp.StatusCode)
	}

	// Wrong method.
	getResp, err := http.Get(ts.URL + "/verify")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /verify: status = %d", getResp.StatusCode)
	}
}

func TestLoadCorpusSynthetic(t *testing.T) {
	corpus, err := loadCorpus("", 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Names()) == 0 {
		t.Fatal("synthetic corpus is empty")
	}
	if _, err := loadCorpus(t.TempDir(), 0, 0); err == nil || !strings.Contains(err.Error(), "no *.csv") {
		t.Errorf("empty corpus dir: err = %v", err)
	}
}
