package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/repro/scrutinizer"
	"github.com/repro/scrutinizer/internal/core"
	"github.com/repro/scrutinizer/internal/crowd"
	"github.com/repro/scrutinizer/internal/planner"
)

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func do(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sessionCrowd answers session questions exactly like the in-process
// simulated-crowd oracle: per-claim team views over the same seeds, truth
// labels from the document, truth SQL from an identically-built system.
type sessionCrowd struct {
	t       *testing.T
	engine  *core.Engine
	team    *crowd.Team
	doc     *scrutinizer.Document
	oracles map[int]core.Oracle
}

func newSessionCrowd(t *testing.T, corpus *scrutinizer.Corpus, doc *scrutinizer.Document, seed int64, teamSize int) *sessionCrowd {
	t.Helper()
	sys, err := scrutinizer.New(corpus, doc, scrutinizer.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(teamSize)
	if err != nil {
		t.Fatal(err)
	}
	return &sessionCrowd{t: t, engine: sys.Engine(), team: team, doc: doc, oracles: map[int]core.Oracle{}}
}

func (sc *sessionCrowd) answer(q scrutinizer.SessionQuestion) scrutinizer.SessionAnswer {
	sc.t.Helper()
	oracle := sc.oracles[q.ClaimID]
	if oracle == nil {
		var err error
		oracle, err = sc.engine.NewTeamOracle(sc.team.ForClaim(q.ClaimID))
		if err != nil {
			sc.t.Fatal(err)
		}
		sc.oracles[q.ClaimID] = oracle
	}
	var claim *scrutinizer.Claim
	for _, c := range sc.doc.Claims {
		if c.ID == q.ClaimID {
			claim = c
			break
		}
	}
	if claim == nil {
		sc.t.Fatalf("question for unknown claim %d", q.ClaimID)
	}
	var value string
	var secs float64
	if q.Screen == "final" {
		value, secs = oracle.AnswerFinal(claim, q.Candidates)
	} else {
		var kind core.PropertyKind
		switch q.Screen {
		case "relation":
			kind = core.PropRelation
		case "key":
			kind = core.PropKey
		case "attribute":
			kind = core.PropAttr
		case "formula":
			kind = core.PropFormula
		default:
			sc.t.Fatalf("unknown screen %q", q.Screen)
		}
		opts := make([]planner.Option, len(q.Options))
		for i, o := range q.Options {
			opts[i] = planner.Option{Value: o.Value, Prob: o.Prob}
		}
		value, secs = oracle.AnswerProperty(claim, kind, opts)
	}
	return scrutinizer.SessionAnswer{QuestionID: q.ID, ClaimID: q.ClaimID, Value: value, Seconds: secs}
}

// TestSessionLifecycleMatchesVerify is the acceptance pin at the HTTP
// layer: a simulated crowd driving a document through the session API
// (create → poll questions → post answers → report) produces verdicts,
// crowd seconds and accuracy bit-identical to POST /verify with the same
// seed and team.
func TestSessionLifecycleMatchesVerify(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	envelope := func(extra string) []byte {
		return []byte(`{"document": ` + doc.String() + `, "batch": 10, "seed": 11, "section_read_cost": 15, ` + extra + `}`)
	}

	// Reference: the synchronous simulated-crowd endpoint.
	refResp, ref := postVerify(t, ts, envelope(`"team": 3`))
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d", refResp.StatusCode)
	}

	// Interactive: create a session with three section-skimming checkers
	// (the team-size analog for the §5.1 cost accounting).
	resp := do(t, http.MethodPost, ts.URL+"/sessions", envelope(`"checkers": 3`))
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create status = %d: %s", resp.StatusCode, b)
	}
	var created sessionCreateResponse
	decodeJSON(t, resp, &created)
	if created.ID == "" || created.Claims != len(w.Document.Claims) || len(created.Questions) == 0 {
		t.Fatalf("create response = %+v", created)
	}

	sc := newSessionCrowd(t, w.Corpus, w.Document, 11, 3)
	questions := created.Questions
	for len(questions) > 0 {
		var answers []scrutinizer.SessionAnswer
		for _, q := range questions {
			answers = append(answers, sc.answer(q))
		}
		payload, err := json.Marshal(map[string]any{"answers": answers})
		if err != nil {
			t.Fatal(err)
		}
		aResp := do(t, http.MethodPost, ts.URL+"/sessions/"+created.ID+"/answers", payload)
		if aResp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(aResp.Body)
			t.Fatalf("answers status = %d: %s", aResp.StatusCode, b)
		}
		var ar answersResponse
		decodeJSON(t, aResp, &ar)
		if ar.Accepted != len(answers) {
			t.Fatalf("accepted %d of %d answers", ar.Accepted, len(answers))
		}
		questions = ar.Questions
		if len(questions) == 0 && !ar.Progress.Done {
			// Batch boundary: the next batch's questions are fetched by
			// polling, as a real client would.
			qResp := do(t, http.MethodGet, ts.URL+"/sessions/"+created.ID+"/questions", nil)
			var qs struct {
				Questions []scrutinizer.SessionQuestion `json:"questions"`
				Done      bool                          `json:"done"`
			}
			decodeJSON(t, qResp, &qs)
			questions = qs.Questions
			if len(questions) == 0 && !qs.Done {
				t.Fatal("session not done but no questions queued")
			}
		}
	}

	// Progress reflects completion and the retrain generations.
	pResp := do(t, http.MethodGet, ts.URL+"/sessions/"+created.ID, nil)
	var prog scrutinizer.SessionProgress
	decodeJSON(t, pResp, &prog)
	if !prog.Done || prog.Verified != len(w.Document.Claims) || prog.ModelGeneration == 0 {
		t.Fatalf("final progress = %+v", prog)
	}

	rResp := do(t, http.MethodGet, ts.URL+"/sessions/"+created.ID+"/report", nil)
	var rep sessionReportResponse
	decodeJSON(t, rResp, &rep)
	if !rep.Done {
		t.Fatal("report not done")
	}
	if rep.CrowdSecs != ref.CrowdSecs {
		t.Errorf("crowd seconds = %v, want %v", rep.CrowdSecs, ref.CrowdSecs)
	}
	if rep.Correct != ref.Correct || rep.Incorrect != ref.Incorrect || rep.Skipped != ref.Skipped {
		t.Errorf("verdict counts %d/%d/%d, want %d/%d/%d",
			rep.Correct, rep.Incorrect, rep.Skipped, ref.Correct, ref.Incorrect, ref.Skipped)
	}
	if rep.Accuracy != ref.Accuracy {
		t.Errorf("accuracy = %v, want %v", rep.Accuracy, ref.Accuracy)
	}
	if rep.Batches != ref.Batches || len(rep.Outcomes) != len(ref.Outcomes) {
		t.Errorf("batches/outcomes = %d/%d, want %d/%d", rep.Batches, len(rep.Outcomes), ref.Batches, len(ref.Outcomes))
	}
	for i := range rep.Outcomes {
		if rep.Outcomes[i] != ref.Outcomes[i] && (rep.Outcomes[i].Suggestion == nil) == (ref.Outcomes[i].Suggestion == nil) {
			// Pointers differ; compare fields.
			a, b := rep.Outcomes[i], ref.Outcomes[i]
			if a.ClaimID != b.ClaimID || a.Verdict != b.Verdict || a.Seconds != b.Seconds || a.SQL != b.SQL || a.Value != b.Value {
				t.Fatalf("outcome %d = %+v, want %+v", i, a, b)
			}
		}
	}

	// Delete ends the session.
	dResp := do(t, http.MethodDelete, ts.URL+"/sessions/"+created.ID, nil)
	if dResp.StatusCode != http.StatusOK {
		t.Errorf("delete status = %d", dResp.StatusCode)
	}
	dResp.Body.Close()
	if g := do(t, http.MethodGet, ts.URL+"/sessions/"+created.ID, nil); g.StatusCode != http.StatusNotFound {
		t.Errorf("deleted session still reachable: %d", g.StatusCode)
	}
}

// TestSessionEndpointErrors covers the session error surface: malformed
// bodies, unknown IDs, stale question IDs, wrong methods.
func TestSessionEndpointErrors(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Malformed create bodies.
	for _, payload := range []string{"{not json", `{"document": {"title": "t"}, "ordering": "alphabetical"}`} {
		resp := do(t, http.MethodPost, ts.URL+"/sessions", []byte(payload))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("create %q: status = %d, want 400", payload, resp.StatusCode)
		}
	}
	// Empty document fails system construction.
	resp := do(t, http.MethodPost, ts.URL+"/sessions", []byte(`{}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("empty create: status = %d, want 422", resp.StatusCode)
	}

	// Unknown session IDs.
	for _, ep := range []string{"/sessions/nope", "/sessions/nope/questions", "/sessions/nope/report"} {
		resp := do(t, http.MethodGet, ts.URL+ep, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status = %d, want 404", ep, resp.StatusCode)
		}
	}
	resp = do(t, http.MethodPost, ts.URL+"/sessions/nope/answers", []byte(`{"claim_id":1,"value":"x"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("answers for unknown session: status = %d, want 404", resp.StatusCode)
	}

	// A live session rejects malformed and conflicting answers.
	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	cResp := do(t, http.MethodPost, ts.URL+"/sessions", doc.Bytes())
	if cResp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", cResp.StatusCode)
	}
	var created sessionCreateResponse
	decodeJSON(t, cResp, &created)
	base := ts.URL + "/sessions/" + created.ID

	resp = do(t, http.MethodPost, base+"/answers", []byte("{not json"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed answers: status = %d, want 400", resp.StatusCode)
	}
	resp = do(t, http.MethodPost, base+"/answers", []byte(`{}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty answers: status = %d, want 400", resp.StatusCode)
	}
	q := created.Questions[0]
	stale, err := json.Marshal(scrutinizer.SessionAnswer{QuestionID: "c999999.7", ClaimID: q.ClaimID, Value: "x"})
	if err != nil {
		t.Fatal(err)
	}
	resp = do(t, http.MethodPost, base+"/answers", stale)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale question id: status = %d, want 409", resp.StatusCode)
	}

	// Wrong methods 405 via the method-pattern router.
	resp = do(t, http.MethodPut, base, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT session: status = %d, want 405", resp.StatusCode)
	}
	resp = do(t, http.MethodGet, ts.URL+"/sessions", nil)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("GET /sessions unexpectedly served: %d", resp.StatusCode)
	}
}

// TestBodyCap verifies the request-body cap returns 413 on /verify and
// the session endpoints (the server's cap is lowered so the test does not
// allocate 64 MB).
func TestBodyCap(t *testing.T) {
	s, _ := testServer(t)
	s.maxBody = 1024
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	big := []byte(`{"document": {"title": "` + strings.Repeat("x", 4096) + `"}}`)
	for _, ep := range []string{"/verify", "/sessions"} {
		resp := do(t, http.MethodPost, ts.URL+ep, big)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status = %d, want 413", ep, resp.StatusCode)
		}
	}
}

// TestHealthzReportsSessions extends the liveness probe: active session
// count, queued questions and the engine model generation must be
// reported alongside the corpus statistics.
func TestHealthzReportsSessions(t *testing.T) {
	s, w := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var doc bytes.Buffer
	if err := w.Document.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	cResp := do(t, http.MethodPost, ts.URL+"/sessions", doc.Bytes())
	if cResp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", cResp.StatusCode)
	}
	var created sessionCreateResponse
	decodeJSON(t, cResp, &created)

	hResp := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	var health struct {
		Status   string `json:"status"`
		Sessions struct {
			Active          int    `json:"active"`
			QueuedQuestions int    `json:"queued_questions"`
			ModelGeneration uint64 `json:"model_generation"`
		} `json:"sessions"`
	}
	decodeJSON(t, hResp, &health)
	if health.Status != "ok" || health.Sessions.Active != 1 {
		t.Errorf("healthz = %+v", health)
	}
	if health.Sessions.QueuedQuestions != len(created.Questions) {
		t.Errorf("queued = %d, want %d", health.Sessions.QueuedQuestions, len(created.Questions))
	}
}
