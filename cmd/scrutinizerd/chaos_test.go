package main

// The chaos harness: tenant-protection behavior under hostile or degraded
// conditions, driven through the real route tree. Everything here is named
// to match the CI chaos job's -run 'Chaos|Cancel|Quota' filter and must
// stay green under -race.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/scrutinizer"
)

// guardedServer is testServer with tenant-protection knobs.
func guardedServer(t *testing.T, cfg serverConfig, st scrutinizer.Store) (*server, *scrutinizer.World, *httptest.Server) {
	t.Helper()
	wcfg := scrutinizer.SmallWorld()
	wcfg.NumClaims = 30
	wcfg.NumSections = 3
	w, err := scrutinizer.GenerateWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.parallel == 0 {
		cfg.parallel = 4
	}
	if cfg.sessionTTL == 0 {
		cfg.sessionTTL = time.Hour
	}
	s, err := newServer(w.Corpus, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, w, ts
}

// smallDoc trims the world document so guarded runs stay cheap.
func smallDoc(w *scrutinizer.World, n int) *scrutinizer.Document {
	return &scrutinizer.Document{Title: "chaos", Sections: w.Document.Sections,
		Claims: w.Document.Claims[:n]}
}

// TestChaosRateLimit429: a tenant over its token bucket gets 429 with a
// Retry-After, before the request body is even read.
func TestChaosRateLimit429(t *testing.T) {
	_, _, ts := guardedServer(t, serverConfig{rateLimit: 1, rateBurst: 1}, nil)

	// The burst admits one request (garbage body: admission happens before
	// parsing, so a 400 proves the token was spent).
	resp := do(t, http.MethodPost, ts.URL+"/verify", []byte("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("first request status = %d, want 400", resp.StatusCode)
	}
	// The bucket is empty: the second request is rejected without parsing.
	resp = do(t, http.MethodPost, ts.URL+"/verify", []byte("{"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "rate limit") {
		t.Errorf("429 body does not name the rate limit: %s", body)
	}
}

// TestChaosGateSheds503: at -max-inflight the gate rejects with 503 +
// Retry-After and /readyz reports degraded; freeing a slot restores
// admission. The slots are occupied directly through the gate so the test
// is deterministic — no goroutine timing.
func TestChaosGateSheds503(t *testing.T) {
	s, _, ts := guardedServer(t, serverConfig{maxInflight: 2}, nil)

	leave1, ok1 := s.gate.Enter()
	leave2, ok2 := s.gate.Enter()
	if !ok1 || !ok2 {
		t.Fatal("could not occupy the gate")
	}
	resp := do(t, http.MethodPost, ts.URL+"/verify", []byte("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status at capacity = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 carries no Retry-After header")
	}

	// Readiness stays 200 — the daemon is serving — but reports degraded.
	resp = do(t, http.MethodGet, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz at capacity = %d, want 200", resp.StatusCode)
	}
	var rz struct {
		Status    string `json:"status"`
		Admission struct {
			InFlight int `json:"in_flight"`
			Shed     int `json:"shed_total"`
		} `json:"admission"`
	}
	decodeJSON(t, resp, &rz)
	if rz.Status != "degraded" || rz.Admission.Shed == 0 {
		t.Errorf("/readyz at capacity = %+v, want degraded with shed > 0", rz)
	}

	leave1()
	leave2()
	resp = do(t, http.MethodPost, ts.URL+"/verify", []byte("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status after slots freed = %d, want 400 (admitted, bad body)", resp.StatusCode)
	}
}

// TestChaosQuotaPerTenantRuns: with -max-runs-per-tenant=1 a parked
// interactive run blocks the tenant's next run with 429 — but only that
// tenant's; deleting the run frees the slot.
func TestChaosQuotaPerTenantRuns(t *testing.T) {
	_, w, ts := guardedServer(t, serverConfig{maxRunsPerTenant: 1}, nil)
	doc := smallDoc(w, 6)

	hostile := trainV1Verifier(t, ts, "default", w.Document, 11)
	polite := trainV1Verifier(t, ts, "default", w.Document, 12)

	// Park an interactive run on the hostile verifier: it holds the
	// tenant's only slot until finished or deleted.
	runID := startSessionRun(t, ts.URL, hostile.ID, doc)

	batch := func(verifierID string) *http.Response {
		body, _ := json.Marshal(map[string]any{
			"document": json.RawMessage(docJSON(t, doc)),
			"mode":     "batch",
			"batch":    5,
			"seed":     int64(11),
		})
		return do(t, http.MethodPost, ts.URL+"/v1/verifiers/"+verifierID+"/runs", body)
	}

	resp := batch(hostile.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second run at quota: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota 429 carries no Retry-After header")
	}
	// A second session run is equally rejected.
	body, _ := json.Marshal(map[string]any{
		"document": json.RawMessage(docJSON(t, doc)),
		"mode":     "session",
		"batch":    5,
	})
	resp = do(t, http.MethodPost, ts.URL+"/v1/verifiers/"+hostile.ID+"/runs", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session at quota: status = %d, want 429", resp.StatusCode)
	}

	// The other tenant is untouched by the hostile tenant's quota.
	resp = batch(polite.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant's run: status = %d, want 200", resp.StatusCode)
	}

	// Deleting the parked run frees the slot.
	resp = do(t, http.MethodDelete, ts.URL+"/v1/runs/"+runID, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete parked run: status = %d", resp.StatusCode)
	}
	resp = batch(hostile.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after freeing quota: status = %d, want 200", resp.StatusCode)
	}
}

// TestChaosPanicTearsDownSessionOnly: a panic inside the answers handler
// costs that request (500) and that session (torn down), never the daemon
// — other sessions keep serving.
func TestChaosPanicTearsDownSessionOnly(t *testing.T) {
	s, w, ts := guardedServer(t, serverConfig{}, scrutinizer.NewMemoryStore())
	doc := smallDoc(w, 6)

	createSession := func() sessionCreateResponse {
		body, _ := json.Marshal(map[string]any{
			"document": json.RawMessage(docJSON(t, doc)),
			"batch":    5, "seed": int64(11), "checkers": 3,
		})
		resp := do(t, http.MethodPost, ts.URL+"/sessions", body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create session: status %d", resp.StatusCode)
		}
		var created sessionCreateResponse
		decodeJSON(t, resp, &created)
		return created
	}
	victim := createSession()
	bystander := createSession()

	var fired atomic.Bool
	s.panicHook = func(*http.Request) {
		if fired.CompareAndSwap(false, true) {
			panic("chaos: injected handler panic")
		}
	}
	answer := []byte(`{"claim_id": 0, "value": "x", "seconds": 1}`)
	resp := do(t, http.MethodPost, ts.URL+"/sessions/"+victim.ID+"/answers", answer)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking answer: status = %d, want 500", resp.StatusCode)
	}

	// The poisoned session was torn down...
	resp = do(t, http.MethodGet, ts.URL+"/sessions/"+victim.ID, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("victim session after panic: status = %d, want 404", resp.StatusCode)
	}
	// ...and the bystander — and the daemon — kept serving.
	resp = do(t, http.MethodGet, ts.URL+"/sessions/"+bystander.ID+"/questions", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bystander session after panic: status = %d, want 200", resp.StatusCode)
	}
	if next := createSession(); next.ID == "" {
		t.Fatal("daemon stopped creating sessions after a handler panic")
	}
}

// TestChaosReadyzDuringReplay: while boot replays the journal the daemon
// is live (/healthz 200) but not ready (/readyz 503, API 503); readiness
// flips only after replay finishes. A store latency fault holds the boot
// in the replay window long enough to probe it.
func TestChaosReadyzDuringReplay(t *testing.T) {
	wcfg := scrutinizer.SmallWorld()
	wcfg.NumClaims = 16
	wcfg.NumSections = 3
	w, err := scrutinizer.GenerateWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{parallel: 4, sessionTTL: time.Hour}

	// Phase 1: write journaled state worth replaying — a verifier and a
	// parked session over a durable store.
	st := scrutinizer.NewMemoryStore()
	s1, err := newServer(w.Corpus, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.routes())
	vinfo := trainV1Verifier(t, ts1, "default", w.Document, 11)
	startSessionRun(t, ts1.URL, vinfo.ID, smallDoc(w, 6))
	ts1.Close()

	// Phase 2: reboot over the same journal behind a slow-disk fault.
	// Replay pays the latency per record, which holds the daemon in the
	// not-ready window while we probe it.
	slow := scrutinizer.NewFaultyStorePlan(st, scrutinizer.StoreFaultPlan{
		FailAppendsAfter: 1 << 30,
		Latency:          10 * time.Millisecond,
	})
	s2 := newServerShell(cfg, slow)
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()

	bootDone := make(chan error, 1)
	go func() { bootDone <- s2.boot(w.Corpus) }()

	// Probe during replay. The journal holds dozens of records at 10ms
	// each, so the first probes land well inside the window.
	resp := do(t, http.MethodGet, ts2.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during replay: status = %d, want 503", resp.StatusCode)
	}
	var rz struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
	}
	decodeJSON(t, resp, &rz)
	if rz.Status != "starting" || rz.Ready {
		t.Errorf("/readyz during replay = %+v", rz)
	}
	resp = do(t, http.MethodGet, ts2.URL+"/healthz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during replay: status = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
	resp = do(t, http.MethodPost, ts2.URL+"/verify", []byte("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("API during replay: status = %d, want 503", resp.StatusCode)
	}

	if err := <-bootDone; err != nil {
		t.Fatalf("boot: %v", err)
	}
	resp = do(t, http.MethodGet, ts2.URL+"/readyz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after replay: status = %d, want 200", resp.StatusCode)
	}
}

// TestChaosHostileTenantFairness: a hostile tenant hammering its verifier
// collects 429s while a polite tenant's paced runs all succeed. This is
// the in-process proxy for the loadgen overload gate (which measures the
// throughput claim end to end): here the invariant is isolation — zero
// rejections for the tenant inside its budget.
func TestChaosHostileTenantFairness(t *testing.T) {
	_, w, ts := guardedServer(t, serverConfig{rateLimit: 20, rateBurst: 3}, nil)
	doc := smallDoc(w, 4)

	hostile := trainV1Verifier(t, ts, "default", w.Document, 11)
	polite := trainV1Verifier(t, ts, "default", w.Document, 12)

	runBody, _ := json.Marshal(map[string]any{
		"document": json.RawMessage(docJSON(t, doc)),
		"mode":     "batch",
		"batch":    5,
		"seed":     int64(11),
	})

	// Hostile: four workers posting as fast as the daemon answers, no
	// backoff, for the whole polite phase.
	stop := make(chan struct{})
	var shed, hostile5xx atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/verifiers/"+hostile.ID+"/runs", "application/json",
					strings.NewReader(string(runBody)))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				case resp.StatusCode >= 500:
					hostile5xx.Add(1)
				}
			}
		}()
	}

	// Polite: five runs, paced under the 20/s budget.
	for i := 0; i < 5; i++ {
		resp := do(t, http.MethodPost, ts.URL+"/v1/verifiers/"+polite.ID+"/runs", runBody)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("polite run %d under hostile load: status = %d (%s)", i, resp.StatusCode, body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if shed.Load() == 0 {
		t.Error("hostile tenant was never rate-limited — the limiter did not engage")
	}
	if hostile5xx.Load() != 0 {
		t.Errorf("hostile load produced %d non-shed 5xx responses", hostile5xx.Load())
	}
}

// TestCancelRequestTimeout504: -request-timeout bounds a verification and
// maps the expiry to 504, not 500.
func TestCancelRequestTimeout504(t *testing.T) {
	_, w, ts := guardedServer(t, serverConfig{requestTimeout: time.Microsecond}, nil)
	var payload strings.Builder
	payload.WriteString(`{"batch": 10, "seed": 11, "document": `)
	bodyDoc := docJSON(t, w.Document)
	payload.Write(bodyDoc)
	payload.WriteString(`}`)
	resp := do(t, http.MethodPost, ts.URL+"/verify", []byte(payload.String()))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
}

// TestCancelClientDisconnectStopsRun: a client abandoning its request
// cancels the verification mid-run, and the daemon's worker goroutines
// wind down to the pre-request baseline — no abandoned run keeps burning
// CPU for a caller that left.
func TestCancelClientDisconnectStopsRun(t *testing.T) {
	_, w, ts := guardedServer(t, serverConfig{}, nil)
	payload := fmt.Sprintf(`{"batch": 5, "seed": 11, "team": 3, "document": %s}`, docJSON(t, w.Document))

	// Let the HTTP server finish its keep-alive bookkeeping from setup.
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/verify", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		errc := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			errc <- err
		}()
		// Give the verification time to start, then walk away.
		time.Sleep(15 * time.Millisecond)
		cancel()
		if err := <-errc; err == nil {
			t.Log("request finished before the disconnect; cancellation path not exercised this iteration")
		}
	}

	// All verification workers must wind down once their context dies.
	settled := baseline
	for i := 0; i < 100; i++ {
		settled = runtime.NumGoroutine()
		if settled <= baseline {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Allow a little slack for the httptest server's own connection
	// goroutines (keep-alives park briefly after a dropped connection).
	if settled > baseline+2 {
		t.Errorf("goroutines after disconnected runs: %d, baseline %d", settled, baseline)
	}
}
