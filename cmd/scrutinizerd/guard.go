package main

// Tenant protection under overload. Every expensive route (verification
// runs, verifier training, session creation, answer posts) passes three
// O(1) admission checks before any engine or store work starts, cheapest
// first:
//
//  1. s.admit — the global in-flight gate. Over -max-inflight the request
//     is shed with 503 + Retry-After; nothing ever queues, so overload
//     cannot accumulate goroutines. The gate also counts unbounded, which
//     is what lets shutdown drain handlers before closing the store.
//  2. s.rateLimit — the per-tenant token bucket (-rate-limit/-rate-burst).
//     A tenant sending too fast gets 429 with a Retry-After computed from
//     its own bucket; other tenants' buckets are untouched.
//  3. s.acquireRun / runQuotaFree — the per-tenant concurrent-run quota
//     (-max-runs-per-tenant): batch runs hold a slot for the request,
//     interactive runs are counted via the session registry's owner tags.
//
// Tenant keys follow the resource being charged: the verifier ID for runs
// and answers, the corpus ID for verifier training, and the default corpus
// for the legacy single-tenant routes.
//
// The route tree is wrapped in two middlewares: withRecover converts
// handler panics into logged 500s (a panicking request must not kill the
// daemon), and withReady fails every API route with 503 until boot-time
// journal replay has finished — /healthz (liveness) and /readyz stay
// reachable throughout.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// admit passes the request through the global admission gate. On shed it
// writes the 503 itself; the caller must defer leave() when ok.
func (s *server) admit(w http.ResponseWriter) (leave func(), ok bool) {
	leave, ok = s.gate.Enter()
	if !ok {
		s.metrics.rejected.With("gate_shed").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("server at capacity (%d requests in flight); retry shortly", s.cfg.maxInflight))
	}
	return leave, ok
}

// rateLimit spends one token from key's bucket, writing the 429 (with the
// bucket's own refill time as Retry-After) when the tenant is over rate.
func (s *server) rateLimit(w http.ResponseWriter, key string) bool {
	ok, retryAfter := s.rates.Allow(key)
	if !ok {
		s.metrics.rejected.With("rate_limit").Inc()
		secs := int(retryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over rate limit (%.3g requests/s); retry in %ds", key, s.cfg.rateLimit, secs))
	}
	return ok
}

// runsInFlight counts key's live runs in both accounting domains: batch
// runs holding quota slots plus interactive sessions tagged with the key.
func (s *server) runsInFlight(key string) int {
	return s.runQuota.InFlight(key) + s.sessions.Stats().ByOwner[key]
}

// runQuotaFree checks (without claiming) that key has a free run slot,
// writing the 429 when it does not. Interactive runs use this: once the
// session is created the registry's owner tag carries the count.
func (s *server) runQuotaFree(w http.ResponseWriter, key string) bool {
	if s.runQuota == nil {
		return true
	}
	if n := s.runsInFlight(key); n >= s.cfg.maxRunsPerTenant {
		s.metrics.rejected.With("run_quota").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q at its concurrent-run quota (%d); finish or delete a run first", key, s.cfg.maxRunsPerTenant))
		return false
	}
	return true
}

// acquireRun claims a batch-run slot under key for the duration of the
// request, writing the 429 on rejection. The caller must defer release()
// when ok.
func (s *server) acquireRun(w http.ResponseWriter, key string) (release func(), ok bool) {
	if !s.runQuotaFree(w, key) {
		return nil, false
	}
	release, ok = s.runQuota.Acquire(key)
	if !ok {
		// Lost the race between the combined check and the claim.
		s.metrics.rejected.With("run_quota").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q at its concurrent-run quota (%d)", key, s.cfg.maxRunsPerTenant))
	}
	return release, ok
}

// runCtx derives the verification context for one request: cancelled when
// the client disconnects (or the server drains), and additionally bounded
// by -request-timeout when set. Core checkpoints observe it between
// verification rounds, batch-selection scans and enumeration batches.
func (s *server) runCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.requestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.requestTimeout)
	}
	return context.WithCancel(r.Context())
}

// verifyErrStatus maps a verification error to its HTTP status: a server
// deadline is a 504, a cancellation (client gone, or the daemon draining)
// is a 503, anything else is a genuine 500.
func verifyErrStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleReadyz is the readiness probe: 503 while boot-time journal replay
// is still running (the API would race the replay), 200 once serving.
// Shedding is reported as "degraded" — still ready, but at capacity —
// with the gate's numbers so an operator can see the pressure.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting",
			"ready":  false,
			"reason": "journal replay in progress",
		})
		return
	}
	// Same gather as /healthz and /metrics: one source of truth.
	snap := s.refreshMetrics()
	status := "ok"
	if snap.gate.Shedding {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"ready":     true,
		"admission": snap.gate,
	})
}

// withReady fails every API route with 503 until boot has finished
// journal replay; the probes stay reachable so liveness reports green
// (the process is healthy) while readiness reports not-ready.
func (s *server) withReady(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" && r.URL.Path != "/metrics" {
			s.metrics.rejected.With("not_ready").Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "recovering journaled state; retry shortly")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withRecover turns a handler panic into a logged 500. One poisoned
// request (or a bug in a single handler) must cost that request alone,
// never the daemon: every other tenant's sessions and runs keep serving.
func (s *server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				daemonLog.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				httpError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
