#!/usr/bin/env bash
# api-smoke.sh — end-to-end smoke test of scrutinizerd's /v1 surface.
#
# Boots the daemon, then drives the README walkthrough with curl:
# create a corpus, upload its relations as CSV, train a verifier from an
# annotated document, execute a batch run, open an interactive session
# run and answer its first question, check /healthz tenant stats, and
# scrape /metrics, validating the Prometheus exposition (typed families,
# no duplicate series, live samples from every serving layer).
# Any non-2xx response or an empty verification report fails the script.
#
# Usage: scripts/api-smoke.sh   (from the repository root; needs curl + jq)

set -euo pipefail

for tool in curl jq go; do
  command -v "$tool" >/dev/null || { echo "api-smoke: missing $tool" >&2; exit 1; }
done

ADDR="127.0.0.1:8321"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "api-smoke: building scrutinizerd and generating a world"
go build -o "$WORK/scrutinizerd" ./cmd/scrutinizerd
go run ./cmd/datagen -out "$WORK/world" -seed 7 >/dev/null

# -data-dir makes the store layer live so its metrics (journal appends,
# fsync latency) show up in the /metrics check below.
"$WORK/scrutinizerd" -addr "$ADDR" -claims 40 -data-dir "$WORK/data" >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 60); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "api-smoke: daemon died during startup" >&2; cat "$WORK/daemon.log" >&2; exit 1
  fi
  sleep 0.5
  [ "$i" = 60 ] && { echo "api-smoke: daemon never became healthy" >&2; exit 1; }
done
echo "api-smoke: daemon healthy on $BASE"

# req METHOD PATH [curl-args...] — fails the script on any non-2xx.
req() {
  local method="$1" path="$2"; shift 2
  curl -fsS -X "$method" "$BASE$path" "$@" || {
    echo "api-smoke: $method $path failed" >&2; exit 1
  }
}

# 1. Create a corpus.
req POST /v1/corpora -H 'Content-Type: application/json' -d '{"id": "iea"}' | jq -e '.id == "iea"' >/dev/null
echo "api-smoke: corpus iea created"

# 2. Upload every generated relation as raw CSV.
count=0
for f in "$WORK"/world/relations/*.csv; do
  name="$(basename "$f" .csv)"
  req PUT "/v1/corpora/iea/relations/$name" -H 'Content-Type: text/csv' --data-binary "@$f" >/dev/null
  count=$((count + 1))
done
req GET /v1/corpora/iea | jq -e --argjson n "$count" '.relations == $n' >/dev/null
echo "api-smoke: $count relations uploaded"

# 3. Train a verifier from the annotated document.
VID="$(req POST /v1/corpora/iea/verifiers -H 'Content-Type: application/json' \
  --data-binary "@$WORK/world/document.json" | jq -re '.id')"
req GET "/v1/verifiers/$VID" | jq -e '.trained_on > 0 and .model_generation > 0' >/dev/null
echo "api-smoke: verifier $VID trained"

# 4. Batch run: the report must cover every claim.
jq -n --slurpfile doc "$WORK/world/document.json" '{document: $doc[0], batch: 40}' >"$WORK/run.json"
req POST "/v1/verifiers/$VID/runs" -H 'Content-Type: application/json' \
  --data-binary "@$WORK/run.json" >"$WORK/report.json"
jq -e '.claims > 0 and (.outcomes | length) == .claims and (.correct + .incorrect + .skipped) == .claims' \
  "$WORK/report.json" >/dev/null || {
    echo "api-smoke: empty or inconsistent batch report:" >&2; jq . "$WORK/report.json" >&2; exit 1
  }
echo "api-smoke: batch run verified $(jq -r .claims "$WORK/report.json") claims" \
  "($(jq -r .correct "$WORK/report.json") correct, accuracy $(jq -r .accuracy "$WORK/report.json"))"

# 5. Interactive session run: create, poll questions, answer one, delete.
jq -n --slurpfile doc "$WORK/world/document.json" \
  '{document: $doc[0], mode: "session", batch: 10}' >"$WORK/session.json"
req POST "/v1/verifiers/$VID/runs" -H 'Content-Type: application/json' \
  --data-binary "@$WORK/session.json" >"$WORK/sess.json"
RUN_ID="$(jq -re '.id' "$WORK/sess.json")"
jq -e '(.questions | length) > 0' "$WORK/sess.json" >/dev/null
jq '{claim_id: .questions[0].claim_id, question_id: .questions[0].id,
     value: (.questions[0].options[0].value // ""), seconds: 2}' "$WORK/sess.json" >"$WORK/answer.json"
req POST "/v1/runs/$RUN_ID/answers" -H 'Content-Type: application/json' \
  --data-binary "@$WORK/answer.json" | jq -e '.accepted == 1' >/dev/null
req GET "/v1/runs/$RUN_ID" | jq -e '.answered == 1' >/dev/null
req DELETE "/v1/runs/$RUN_ID" >/dev/null
echo "api-smoke: interactive run $RUN_ID answered and deleted"

# 6. Tenant stats on /healthz.
req GET /healthz | jq -e --arg vid "$VID" \
  '.service.verifiers >= 1 and .service.per_verifier[$vid].runs_started >= 2 and .version != ""' >/dev/null
echo "api-smoke: healthz reports tenant load"

# 7. Metrics scrape: valid exposition text, every sample under a typed
# family, no duplicate series, and live series from each serving layer.
curl -fsS -D "$WORK/metrics.hdr" "$BASE/metrics" >"$WORK/metrics.txt"
grep -qi '^content-type: text/plain; version=0.0.4' "$WORK/metrics.hdr" || {
  echo "api-smoke: /metrics content-type wrong:" >&2; cat "$WORK/metrics.hdr" >&2; exit 1
}
awk '
  /^# TYPE / { if (NF != 4) { print "malformed TYPE: " $0; bad = 1 }
               if ($3 in type) { print "duplicate TYPE: " $3; bad = 1 }
               type[$3] = $4; next }
  /^# HELP / { next }
  /^#/       { print "unknown comment: " $0; bad = 1; next }
  /^$/       { print "blank line in exposition"; bad = 1; next }
  {
    series = $0; sub(/ [^ ]*$/, "", series)
    if (series in seen) { print "duplicate series: " series; bad = 1 }
    seen[series] = 1
    name = series; sub(/\{.*/, "", name)
    base = name; sub(/_(bucket|sum|count)$/, "", base)
    if (!(name in type) && !(base in type && type[base] == "histogram")) {
      print "series without TYPE: " name; bad = 1
    }
    n++
  }
  END {
    if (n < 20) { print "only " n " series, want >= 20"; bad = 1 }
    exit bad
  }' "$WORK/metrics.txt" || {
    echo "api-smoke: /metrics exposition invalid" >&2; exit 1
  }
for series in \
  'scrutinizer_http_requests_total{route="v1/verifiers",code="200"}' \
  scrutinizer_runs_started_total \
  scrutinizer_run_rounds_total \
  scrutinizer_sessions_created_total \
  scrutinizer_store_appends_total \
  'scrutinizer_querycache_hits_total{corpus="iea"}' \
  scrutinizer_go_goroutines; do
  grep -qF "$series" "$WORK/metrics.txt" || {
    echo "api-smoke: /metrics missing $series" >&2; exit 1
  }
done
echo "api-smoke: /metrics serves $(grep -cv '^#' "$WORK/metrics.txt") valid series"

echo "api-smoke: OK"
