package scrutinizer

// Multi-core, multi-tenant throughput benchmarks: what the service can do
// when N clients hit it at once, not just how fast one request runs. Both
// benchmarks fan b.N document verifications out over C worker goroutines
// and report aggregate claims/s — the headline serving number — so the
// interesting comparison is C=1 vs C=8 on the same code and GOMAXPROCS:
// shared-structure contention (the corpus QueryCache, the feature memo,
// the session and service registries) shows up as C=8 failing to keep up
// with C=1, and the sharded/atomic hot paths are gated on closing exactly
// that gap. Per-run parallelism is pinned to 1 so cross-run concurrency is
// the only fan-out being measured.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/repro/scrutinizer/internal/worldgen"
)

// benchTenantWorldCfg is a smaller world than the single-run benchmarks
// use: many-tenant benchmarks pay the per-op cost C times over, and the
// contention under measurement lives in shared caches, not document size.
func benchTenantWorldCfg(seed int64) worldgen.Config {
	cfg := worldgen.SmallScale()
	cfg.NumClaims = 40
	cfg.NumSections = 5
	cfg.Seed = seed
	return cfg
}

// runConcurrent fans jobs out over c workers and waits for them.
func runConcurrent(b *testing.B, c int, job func(worker int)) {
	b.Helper()
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for range jobs {
				job(worker)
			}
		}(w)
	}
	for i := 0; i < b.N; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()
}

// BenchmarkConcurrentRunsSharedCorpus is the contention headline: C
// concurrent batch runs against ONE trained verifier over ONE corpus, so
// every run hits the same shared QueryCache, feature memo, formula cache
// and corpus index. Each op is one full document verification
// (StartRun + Verify + Close), exactly what the /v1 batch handler does.
func BenchmarkConcurrentRunsSharedCorpus(b *testing.B) {
	for _, c := range []int{1, 8} {
		b.Run(fmt.Sprintf("C%d", c), func(b *testing.B) {
			w, err := worldgen.Generate(benchTenantWorldCfg(7))
			if err != nil {
				b.Fatal(err)
			}
			svc := NewService()
			if _, err := svc.AddCorpus("world", w.Corpus); err != nil {
				b.Fatal(err)
			}
			v, err := svc.CreateVerifier("world", w.Document, Options{Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			teams := make([]*Team, c)
			for i := range teams {
				if teams[i], err = v.NewTeam(3); err != nil {
					b.Fatal(err)
				}
			}
			claims := len(w.Document.Claims)
			b.ResetTimer()
			runConcurrent(b, c, func(worker int) {
				// Resolve through the registry like the HTTP path does.
				vv, ok := svc.Verifier(v.ID())
				if !ok {
					b.Error("verifier vanished")
					return
				}
				run, err := vv.StartRun(context.Background(), w.Document)
				if err != nil {
					b.Error(err)
					return
				}
				res, err := run.Verify(context.Background(), teams[worker], VerifyOptions{BatchSize: 100, Parallelism: 1})
				run.Close()
				if err != nil {
					b.Error(err)
					return
				}
				if len(res.Outcomes) != claims {
					b.Errorf("verified %d of %d claims", len(res.Outcomes), claims)
				}
			})
			b.ReportMetric(float64(b.N)*float64(claims)/b.Elapsed().Seconds(), "claims/s")
		})
	}
}

// BenchmarkServiceManyTenants is the isolation headline: 4 tenants (4
// corpora, one trained verifier each), 8 concurrent clients spread across
// them, plus the registry reads every real request performs (verifier
// lookup, service stats — the healthz poll). Tenants share no model state,
// so any C=8 shortfall against ConcurrentRunsSharedCorpus C=8 is registry
// and session-manager contention, not cache contention.
func BenchmarkServiceManyTenants(b *testing.B) {
	const tenants = 4
	const c = 8
	svc := NewService()
	verifiers := make([]*Verifier, tenants)
	docs := make([]*Document, tenants)
	claims := 0
	for i := 0; i < tenants; i++ {
		w, err := worldgen.Generate(benchTenantWorldCfg(int64(100 + i)))
		if err != nil {
			b.Fatal(err)
		}
		id, err := svc.AddCorpus(fmt.Sprintf("t%d", i), w.Corpus)
		if err != nil {
			b.Fatal(err)
		}
		v, err := svc.CreateVerifier(id, w.Document, Options{Seed: int64(11 + i)})
		if err != nil {
			b.Fatal(err)
		}
		verifiers[i] = v
		// Each tenant verifies its own training document — the warm
		// fit-once / verify-many steady state the service optimizes for.
		docs[i] = w.Document
		claims = len(w.Document.Claims)
	}
	teams := make([]*Team, c)
	for i := range teams {
		var err error
		if teams[i], err = verifiers[i%tenants].NewTeam(3); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	runConcurrent(b, c, func(worker int) {
		tenant := worker % tenants
		vv, ok := svc.Verifier(verifiers[tenant].ID())
		if !ok {
			b.Error("verifier vanished")
			return
		}
		run, err := vv.StartRun(context.Background(), docs[tenant])
		if err != nil {
			b.Error(err)
			return
		}
		res, err := run.Verify(context.Background(), teams[worker], VerifyOptions{BatchSize: 100, Parallelism: 1})
		run.Close()
		if err != nil {
			b.Error(err)
			return
		}
		if len(res.Outcomes) != claims {
			b.Errorf("verified %d of %d claims", len(res.Outcomes), claims)
		}
		// The healthz-style registry poll every fleet runs alongside load.
		if st := svc.Stats(); st.Verifiers != tenants {
			b.Errorf("stats report %d verifiers, want %d", st.Verifiers, tenants)
		}
	})
	b.ReportMetric(float64(b.N)*float64(claims)/b.Elapsed().Seconds(), "claims/s")
}
